#include "check/reporter.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/env.hh"
#include "core/mutex.hh"

namespace jetsim::check {

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

const char *
invariantName(Invariant i)
{
    switch (i) {
      case Invariant::Causality: return "causality";
      case Invariant::MemoryAccounting: return "memory-accounting";
      case Invariant::StreamHazard: return "stream-hazard";
      case Invariant::Plausibility: return "plausibility";
      case Invariant::Determinism: return "determinism";
      case Invariant::StaticLint: return "static-lint";
    }
    return "?";
}

std::string
Violation::str() const
{
    char time_buf[32];
    if (sim_time == kTimeUnknown)
        std::snprintf(time_buf, sizeof(time_buf), "t=?");
    else
        std::snprintf(time_buf, sizeof(time_buf), "t=%lld",
                      static_cast<long long>(sim_time));
    return std::string("jetsan: ") + severityName(severity) + " [" +
           invariantName(invariant) + "] " + component + " " +
           time_buf + ": " + message;
}

Reporter::Reporter()
{
    // Read once at construction, never per-check: the mode is
    // ambient config from the cached startup environment.
    const std::string &m = core::env().check_mode;
    if (m == "log")
        mode_ = Mode::Log;
    else if (m == "count")
        mode_ = Mode::Count;
    else if (m == "abort")
        mode_ = Mode::Abort;
}

Reporter &
Reporter::instance()
{
    // Self-synchronized: every member is guarded by Reporter::mu_.
    static Reporter r; // jetrace: guarded(Reporter::mu_)
    return r;
}

Reporter::Mode
Reporter::setMode(Mode m)
{
    core::LockGuard lock(mu_);
    const Mode prev = mode_;
    mode_ = m;
    return prev;
}

Reporter::Mode
Reporter::mode() const
{
    core::LockGuard lock(mu_);
    return mode_;
}

std::uint64_t
Reporter::total() const
{
    core::LockGuard lock(mu_);
    return total_;
}

std::uint64_t
Reporter::count(Invariant inv) const
{
    core::LockGuard lock(mu_);
    return by_invariant_[static_cast<int>(inv)];
}

std::vector<Violation>
Reporter::violationsSnapshot() const
{
    core::LockGuard lock(mu_);
    return violations_;
}

void
Reporter::clear()
{
    core::LockGuard lock(mu_);
    total_ = 0;
    for (auto &c : by_invariant_)
        c = 0;
    violations_.clear();
}

void
Reporter::report(Severity sev, Invariant inv, const char *component,
                 std::int64_t sim_time, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    char buf[512];
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);

    Violation v;
    v.severity = sev;
    v.invariant = inv;
    v.component = component;
    v.sim_time = sim_time;
    v.message = buf;

    core::LockGuard lock(mu_);
    ++total_;
    ++by_invariant_[static_cast<int>(inv)];
    if (violations_.size() < kMaxRecorded)
        violations_.push_back(v);

    if (mode_ == Mode::Count)
        return;

    std::fprintf(stderr, "%s\n", v.str().c_str());
    if (mode_ == Mode::Abort && sev == Severity::Error) {
        std::fflush(stderr);
        std::abort();
    }
}

ScopedCapture::ScopedCapture()
    : prev_(Reporter::instance().setMode(Reporter::Mode::Count))
{
    Reporter::instance().clear();
}

ScopedCapture::~ScopedCapture()
{
    Reporter::instance().clear();
    Reporter::instance().setMode(prev_);
}

} // namespace jetsim::check
