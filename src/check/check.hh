/**
 * @file
 * JetSan check macros: the entry points components use.
 *
 * JETSIM_CHECK evaluates a condition and reports a violation through
 * the process-wide check::Reporter when it fails; JETSIM_VIOLATION
 * reports unconditionally (for sites that already branched on the
 * bad state and need to sanitise it afterwards).
 *
 * Checks compile away when the JETSIM_CHECKS CMake option is OFF
 * (JETSIM_ENABLE_CHECKS == 0); they are ON by default — every check
 * is O(1) and off the per-kernel hot path's inner loops.
 */

#ifndef JETSIM_CHECK_CHECK_HH
#define JETSIM_CHECK_CHECK_HH

#include "check/reporter.hh"

#ifndef JETSIM_ENABLE_CHECKS
#define JETSIM_ENABLE_CHECKS 1
#endif

/**
 * Report a violation of @p inv at severity @p sev when @p cond is
 * false. @p component is a dotted component path; @p when is the
 * simulated time (check::kTimeUnknown if unavailable); the rest is a
 * printf-style message.
 */
#define JETSIM_CHECK(cond, sev, inv, component, when, ...)              \
    do {                                                                \
        if (JETSIM_ENABLE_CHECKS && !(cond))                            \
            ::jetsim::check::Reporter::instance().report(               \
                sev, inv, component, when, __VA_ARGS__);                \
    } while (0)

/** Unconditionally report a violation (the caller already branched). */
#define JETSIM_VIOLATION(sev, inv, component, when, ...)                \
    do {                                                                \
        if (JETSIM_ENABLE_CHECKS)                                       \
            ::jetsim::check::Reporter::instance().report(               \
                sev, inv, component, when, __VA_ARGS__);                \
    } while (0)

#endif // JETSIM_CHECK_CHECK_HH
