/**
 * @file
 * One concurrent inference process (the trtexec analogue).
 *
 * A process owns an engine built for its precision/batch, a CUDA
 * stream, an enqueue thread on the big CPU cluster, and its device
 * memory (CUDA runtime overhead + engine footprint). The run loop
 * follows trtexec's discipline: one batch is pre-enqueued so the GPU
 * never idles on host-side preprocessing — the paper notes this makes
 * measured throughput an upper bound, and ablation A1 quantifies it.
 *
 * Loop (steady state, pre_enqueue = 1):
 *   GPU executes EC_i while EC_{i+1} sits in the stream; when EC_i
 *   completes, the thread wakes (sync return, paying B_l), performs
 *   host prep, and enqueues EC_{i+2}.
 */

#ifndef JETSIM_WORKLOAD_INFERENCE_PROCESS_HH
#define JETSIM_WORKLOAD_INFERENCE_PROCESS_HH

#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "cpu/scheduler.hh"
#include "cuda/device_buffer.hh"
#include "cuda/stream.hh"
#include "graph/network.hh"
#include "prof/cdf.hh"
#include "sim/stats.hh"
#include "trt/builder.hh"
#include "trt/execution_context.hh"

namespace jetsim::workload {

/** Per-process configuration. */
struct ProcessConfig
{
    std::string name = "proc";
    trt::BuilderConfig build;
    /** Extra ECs kept in flight beyond the executing one. */
    int pre_enqueue = 1;
    /** Host-side per-EC work (input prep, bindings, bookkeeping). */
    sim::Tick prep_cost = sim::usec(450);
    /** Stagger offset before the loop starts. */
    sim::Tick start_offset = 0;
    /**
     * Busy-spin in cudaStreamSynchronize (trtexec's low-latency sync
     * mode). Spinning threads occupy CPU cores, so once processes
     * outnumber the heavy-load cores the OS time-shares them and
     * completion detection is deferred — the paper's blocking
     * mechanism (S7). false = blocking sync (yield until woken).
     */
    bool spin_wait = true;
    /** Spin-loop polling granularity. */
    sim::Tick spin_chunk = sim::usec(150);
    /**
     * Stop enqueueing after this many ECs (0 = unbounded). The bound
     * is counted in the enqueue thread's program order, so the number
     * of ECs a bounded process submits is identical across all legal
     * interleavings — the closed-workload property the model checker
     * (src/mc) relies on to compare schedule-independent digests.
     * Remaining in-flight ECs still drain and sync normally.
     */
    std::uint64_t max_ecs = 0;
};

/** A deployed, running inference process. */
class InferenceProcess
{
  public:
    InferenceProcess(soc::Board &board, cpu::OsScheduler &sched,
                     gpu::GpuEngine &gpu, const graph::Network &net,
                     ProcessConfig cfg);

    InferenceProcess(const InferenceProcess &) = delete;
    InferenceProcess &operator=(const InferenceProcess &) = delete;

    /**
     * Build the engine and pin device memory.
     * @return false when unified memory cannot hold the deployment
     *         (the paper's Nano FCN_ResNet50 x4 failure mode).
     */
    bool deploy();

    bool deployed() const { return deployed_; }

    /** Begin the inference loop (after deploy()). */
    void start();

    /** Let in-flight ECs finish but enqueue no new ones. */
    void stopEnqueue() { stopped_ = true; }

    /** Zero all measurement state (end of warm-up). */
    void beginMeasurement();

    /** Freeze the measurement window. */
    void endMeasurement();

    /** @name Results (valid after endMeasurement)
     * @{ */
    double throughput() const; ///< images/s over the window
    std::uint64_t imagesCompleted() const { return images_; }
    std::uint64_t ecsCompleted() const { return ecs_; }
    /** Lifetime ECs enqueued (not reset by beginMeasurement). */
    std::uint64_t ecsLaunched() const { return launched_; }
    /** Pipeline span: enqueue begin to GPU done (includes queueing
     * behind the pre-enqueued EC). */
    const sim::Accumulator &ecSpan() const { return ec_span_; }
    /** EC duration: interval between successive EC completions — the
     * per-EC GPU residency at steady state (the paper's EC_i). */
    const sim::Accumulator &ecPeriod() const { return ec_period_; }
    const sim::Accumulator &enqueueSpan() const { return enqueue_span_; }
    const sim::Accumulator &launchApiPerEc() const { return launch_api_; }
    const sim::Accumulator &syncSpan() const { return sync_span_; }
    /** Per-EC blocking B_l: GPU completion to CPU-side detection. */
    const sim::Accumulator &blockedTime() const { return blocked_; }
    /** Per-EC latency samples (pipeline spans, ns) for percentile
     * reporting a la trtexec. */
    const prof::Cdf &latencyCdf() const { return latency_cdf_; }
    /** @} */

    const trt::Engine &engine() const;
    const cpu::Thread &thread() const { return *thread_; }
    const ProcessConfig &config() const { return cfg_; }

    /** Device bytes pinned (runtime overhead + engine footprint). */
    sim::Bytes deviceBytes() const;

  private:
    /** One in-flight EC's bookkeeping. */
    struct Slot
    {
        bool gpu_done = false;
        trt::EcRecord rec;
    };

    bool launchBoundReached() const
    {
        return cfg_.max_ecs != 0 && launched_ >= cfg_.max_ecs;
    }

    void prepAndEnqueue();
    void enqueueOne();
    void afterEnqueue();
    void syncFront();
    void spinWait();
    void syncReturn(sim::Tick sync_begin);
    void recordEc(const trt::EcRecord &rec);

    soc::Board &board_;
    gpu::GpuEngine &gpu_;
    graph::Network net_;
    ProcessConfig cfg_;
    sim::Rng rng_;

    cpu::Thread *thread_;
    std::optional<trt::Engine> engine_;
    std::optional<cuda::Stream> stream_;
    std::optional<trt::ExecutionContext> ctx_;
    std::optional<cuda::DeviceBuffer> runtime_mem_;
    std::optional<cuda::DeviceBuffer> engine_mem_;

    bool deployed_ = false;
    bool stopped_ = false;
    bool measuring_ = false;
    std::deque<std::shared_ptr<Slot>> pending_;
    std::shared_ptr<Slot> waiting_on_;
    sim::Tick sync_begin_ = 0;

    sim::Tick window_start_ = 0;
    sim::Tick window_end_ = 0;
    sim::Tick last_ec_done_ = sim::kTickInvalid;
    std::uint64_t images_ = 0;
    std::uint64_t ecs_ = 0;
    std::uint64_t launched_ = 0;
    sim::Accumulator ec_span_;
    sim::Accumulator ec_period_;
    sim::Accumulator enqueue_span_;
    sim::Accumulator launch_api_;
    sim::Accumulator sync_span_;
    sim::Accumulator blocked_;
    prof::Cdf latency_cdf_;
};

} // namespace jetsim::workload

#endif // JETSIM_WORKLOAD_INFERENCE_PROCESS_HH
