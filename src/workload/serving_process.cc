#include "workload/serving_process.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace jetsim::workload {

ServingProcess::ServingProcess(soc::Board &board,
                               cpu::OsScheduler &sched,
                               gpu::GpuEngine &gpu,
                               const graph::Network &net,
                               ServingConfig cfg)
    : board_(board), gpu_(gpu), net_(net), cfg_(std::move(cfg)),
      rng_(board.rng().fork("serve-" + cfg_.name)),
      thread_(sched.createThread(cfg_.name, /*big=*/true))
{
    // 0 = external-only mode (fleet balancer feeds injectArrival).
    JETSIM_ASSERT(cfg_.arrival_rate >= 0.0);
}

bool
ServingProcess::deploy()
{
    JETSIM_ASSERT(!deployed_);

    trt::Builder builder(board_.spec());
    engine_.emplace(builder.build(net_, cfg_.build));

    auto &mem = board_.memory();
    runtime_mem_ = cuda::DeviceBuffer::tryAlloc(
        mem, cfg_.name, board_.spec().memory.process_runtime_overhead);
    if (!runtime_mem_) {
        engine_.reset();
        return false;
    }
    engine_mem_ = cuda::DeviceBuffer::tryAlloc(mem, cfg_.name,
                                               engine_->deviceBytes());
    if (!engine_mem_) {
        runtime_mem_.reset();
        engine_.reset();
        return false;
    }

    stream_.emplace(gpu_, cfg_.name);
    ctx_.emplace(*engine_, *stream_, *thread_, board_);
    deployed_ = true;
    return true;
}

void
ServingProcess::start()
{
    JETSIM_ASSERT(deployed_);
    if (cfg_.arrival_rate > 0.0)
        scheduleArrival();
}

void
ServingProcess::scheduleArrival()
{
    // Poisson process: exponential inter-arrival times.
    const double mean_ns = 1e9 / cfg_.arrival_rate;
    double u = rng_.uniform();
    if (u < 1e-12)
        u = 1e-12;
    const auto gap =
        static_cast<sim::Tick>(-mean_ns * std::log(u)) + 1;
    board_.eq().scheduleIn(gap, [this] { onArrival(); });
}

void
ServingProcess::onArrival()
{
    if (stopped_)
        return;
    ++arrived_;
    queue_.push_back(board_.eq().now());
    max_queue_ = std::max(max_queue_, queue_.size());
    scheduleArrival();
    kick();
}

void
ServingProcess::injectArrival(sim::Tick origin)
{
    if (stopped_)
        return;
    JETSIM_ASSERT(deployed_);
    JETSIM_ASSERT(origin <= board_.eq().now());
    ++arrived_;
    // Queue the *origin* tick: the request's latency clock started at
    // the balancer, so the dispatch hop is part of what it waited.
    queue_.push_back(origin);
    max_queue_ = std::max(max_queue_, queue_.size());
    kick();
}

void
ServingProcess::kick()
{
    if (cycling_)
        return; // the serve cycle will drain the queue itself
    cycling_ = true;
    prepAndEnqueue();
}

void
ServingProcess::prepAndEnqueue()
{
    JETSIM_ASSERT(!queue_.empty());
    const auto prep = static_cast<sim::Tick>(
        rng_.lognormal(static_cast<double>(cfg_.prep_cost), 0.3));
    thread_->exec(prep, [this] { enqueueOne(); });
}

void
ServingProcess::enqueueOne()
{
    auto slot = std::make_shared<Slot>();
    // A fixed-batch engine serves up to `batch` queued requests; a
    // short batch still costs a full EC (padding).
    const int take = std::min<std::size_t>(
        static_cast<std::size_t>(cfg_.build.batch), queue_.size());
    for (int i = 0; i < take; ++i) {
        slot->arrivals.push_back(queue_.front());
        queue_.pop_front();
    }
    pending_.push_back(slot);

    ctx_->enqueue(
        [this, slot](const trt::EcRecord &rec) {
            slot->gpu_done = true;
            if (measuring_) {
                served_ += slot->arrivals.size();
                for (const sim::Tick t : slot->arrivals)
                    latency_.add(
                        static_cast<double>(rec.gpu_done - t));
            }
            if (waiting_on_ == slot) {
                waiting_on_.reset();
                thread_->exec(board_.spec().runtime.sync_cpu_cost,
                              [this] { syncReturn(); });
            }
        },
        [this] { afterEnqueue(); });
}

void
ServingProcess::afterEnqueue()
{
    // Keep the pipeline filled while there is work, then wait on the
    // oldest EC; with nothing pending and nothing queued, go idle.
    if (!queue_.empty() &&
        pending_.size() <
            static_cast<std::size_t>(1 + cfg_.pre_enqueue)) {
        prepAndEnqueue();
        return;
    }
    if (!pending_.empty()) {
        syncFront();
        return;
    }
    cycling_ = false;
}

void
ServingProcess::syncFront()
{
    JETSIM_ASSERT(!pending_.empty());
    auto slot = pending_.front();
    if (slot->gpu_done) {
        thread_->exec(board_.spec().runtime.sync_cpu_cost,
                      [this] { syncReturn(); });
    } else if (cfg_.spin_wait) {
        spinWait();
    } else {
        waiting_on_ = slot;
    }
}

void
ServingProcess::spinWait()
{
    thread_->exec(cfg_.spin_chunk, [this] {
        JETSIM_ASSERT(!pending_.empty());
        if (pending_.front()->gpu_done)
            syncReturn();
        else
            spinWait();
    });
}

void
ServingProcess::syncReturn()
{
    JETSIM_ASSERT(!pending_.empty());
    pending_.pop_front();
    if (!queue_.empty()) {
        prepAndEnqueue();
        return;
    }
    if (!pending_.empty()) {
        syncFront();
        return;
    }
    cycling_ = false;
}

void
ServingProcess::beginMeasurement()
{
    measuring_ = true;
    window_start_ = board_.eq().now();
    served_ = 0;
    arrived_ = 0;
    max_queue_ = queue_.size();
    latency_ = prof::Cdf();
}

void
ServingProcess::endMeasurement()
{
    measuring_ = false;
    window_end_ = board_.eq().now();
}

double
ServingProcess::achievedThroughput() const
{
    const double span = sim::toSec(window_end_ - window_start_);
    return span > 0 ? static_cast<double>(served_) / span : 0.0;
}

const trt::Engine &
ServingProcess::engine() const
{
    JETSIM_ASSERT(engine_.has_value());
    return *engine_;
}

} // namespace jetsim::workload
