/**
 * @file
 * Open-loop inference serving (extension beyond the paper).
 *
 * trtexec measures *capacity*: a closed loop that always has a batch
 * ready. Deployments face *load*: requests arrive on their own clock
 * and latency under queueing is the QoS metric. ServingProcess
 * models a single-tenant server: Poisson arrivals, a FIFO request
 * queue, fixed-batch engines (partially filled batches are padded,
 * as real fixed-shape TensorRT engines do), and per-request latency
 * from arrival to GPU completion.
 *
 * Together with the closed-loop InferenceProcess this spans both
 * operating points the paper's intro cares about: the offline
 * capacity bound and the online latency curve a capacity planner
 * actually needs.
 */

#ifndef JETSIM_WORKLOAD_SERVING_PROCESS_HH
#define JETSIM_WORKLOAD_SERVING_PROCESS_HH

#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "cpu/scheduler.hh"
#include "cuda/device_buffer.hh"
#include "cuda/stream.hh"
#include "graph/network.hh"
#include "prof/cdf.hh"
#include "sim/rng.hh"
#include "trt/builder.hh"
#include "trt/execution_context.hh"

namespace jetsim::workload {

/** Open-loop server configuration. */
struct ServingConfig
{
    std::string name = "server";
    trt::BuilderConfig build;
    /** Offered load in images/s (Poisson arrivals). 0 disables the
     * local generator: requests then come only from injectArrival()
     * — the fleet balancer's cross-shard dispatch path. */
    double arrival_rate = 100.0;
    /** Extra ECs kept in flight beyond the executing one. */
    int pre_enqueue = 1;
    /** Host-side per-EC work. */
    sim::Tick prep_cost = sim::usec(450);
    /** Servers typically use blocking sync; spin optional. */
    bool spin_wait = false;
    sim::Tick spin_chunk = sim::usec(150);
};

/** One inference server on a board. */
class ServingProcess
{
  public:
    ServingProcess(soc::Board &board, cpu::OsScheduler &sched,
                   gpu::GpuEngine &gpu, const graph::Network &net,
                   ServingConfig cfg);

    ServingProcess(const ServingProcess &) = delete;
    ServingProcess &operator=(const ServingProcess &) = delete;

    /** Build the engine and pin device memory; false on OOM. */
    bool deploy();

    bool deployed() const { return deployed_; }

    /** Begin arrivals and the serving loop. */
    void start();

    /**
     * Externally injected request (the fleet balancer's cross-shard
     * dispatch). @p origin is the tick the request entered the
     * system — at the balancer, before the dispatch hop — so request
     * latency includes the network leg. Dropped after
     * stopArrivals(), like locally generated arrivals.
     */
    void injectArrival(sim::Tick origin);

    /** Stop generating arrivals (in-flight work drains). */
    void stopArrivals() { stopped_ = true; }

    /** Zero measurement state (end of warm-up). */
    void beginMeasurement();

    /** Freeze the measurement window. */
    void endMeasurement();

    /** @name Results
     * @{ */
    /** Served images/s over the window. */
    double achievedThroughput() const;
    double offeredLoad() const { return cfg_.arrival_rate; }
    /** Per-request latency samples (arrival to completion, ns). */
    const prof::Cdf &requestLatency() const { return latency_; }
    std::uint64_t served() const { return served_; }
    std::uint64_t arrived() const { return arrived_; }
    /** Largest backlog observed during the window. */
    std::size_t maxQueueDepth() const { return max_queue_; }
    /** @} */

    const trt::Engine &engine() const;

  private:
    struct Slot
    {
        bool gpu_done = false;
        std::vector<sim::Tick> arrivals; ///< requests in this EC
    };

    void scheduleArrival();
    void onArrival();
    void kick();
    void prepAndEnqueue();
    void enqueueOne();
    void afterEnqueue();
    void syncFront();
    void spinWait();
    void syncReturn();

    soc::Board &board_;
    gpu::GpuEngine &gpu_;
    graph::Network net_;
    ServingConfig cfg_;
    sim::Rng rng_;

    cpu::Thread *thread_;
    std::optional<trt::Engine> engine_;
    std::optional<cuda::Stream> stream_;
    std::optional<trt::ExecutionContext> ctx_;
    std::optional<cuda::DeviceBuffer> runtime_mem_;
    std::optional<cuda::DeviceBuffer> engine_mem_;

    bool deployed_ = false;
    bool stopped_ = false;
    bool measuring_ = false;
    bool cycling_ = false; ///< the thread is inside the serve cycle

    std::deque<sim::Tick> queue_; ///< pending request arrival times
    std::deque<std::shared_ptr<Slot>> pending_;
    std::shared_ptr<Slot> waiting_on_;

    sim::Tick window_start_ = 0;
    sim::Tick window_end_ = 0;
    std::uint64_t served_ = 0;
    std::uint64_t arrived_ = 0;
    std::size_t max_queue_ = 0;
    prof::Cdf latency_;
};

} // namespace jetsim::workload

#endif // JETSIM_WORKLOAD_SERVING_PROCESS_HH
