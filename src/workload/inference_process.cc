#include "workload/inference_process.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace jetsim::workload {

InferenceProcess::InferenceProcess(soc::Board &board,
                                   cpu::OsScheduler &sched,
                                   gpu::GpuEngine &gpu,
                                   const graph::Network &net,
                                   ProcessConfig cfg)
    : board_(board), gpu_(gpu), net_(net), cfg_(std::move(cfg)),
      rng_(board.rng().fork("proc-" + cfg_.name)),
      thread_(sched.createThread(cfg_.name, /*big=*/true))
{
}

bool
InferenceProcess::deploy()
{
    JETSIM_ASSERT(!deployed_);

    trt::Builder builder(board_.spec());
    engine_.emplace(builder.build(net_, cfg_.build));

    auto &mem = board_.memory();
    runtime_mem_ = cuda::DeviceBuffer::tryAlloc(
        mem, cfg_.name, board_.spec().memory.process_runtime_overhead);
    if (!runtime_mem_) {
        engine_.reset();
        return false;
    }
    engine_mem_ = cuda::DeviceBuffer::tryAlloc(mem, cfg_.name,
                                               engine_->deviceBytes());
    if (!engine_mem_) {
        runtime_mem_.reset();
        engine_.reset();
        return false;
    }

    stream_.emplace(gpu_, cfg_.name);
    ctx_.emplace(*engine_, *stream_, *thread_, board_);
    deployed_ = true;
    return true;
}

void
InferenceProcess::start()
{
    JETSIM_ASSERT(deployed_);
    board_.eq().scheduleIn(cfg_.start_offset,
                           [this] { prepAndEnqueue(); });
}

// The loop is trtexec's strict single-thread sequence:
//   prep -> enqueue EC_{i+1} -> [fill until depth reached] ->
//   sync EC_i -> prep -> enqueue EC_{i+2} -> sync EC_{i+1} -> ...
// Nothing else ever runs on the thread, so launch chains of distinct
// ECs never interleave (real ExecutionContexts are not re-entrant).

void
InferenceProcess::prepAndEnqueue()
{
    if (stopped_ || launchBoundReached())
        return;
    // Bounded draw: prep stays within the sim::kLognormalEnvelope
    // band, which is what src/absint's CPU-side upper bounds assume.
    const auto prep = static_cast<sim::Tick>(rng_.lognormalBounded(
        static_cast<double>(cfg_.prep_cost), 0.3));
    thread_->exec(prep, [this] { enqueueOne(); });
}

void
InferenceProcess::enqueueOne()
{
    // Counted here, in the enqueue thread's program order: the bound
    // cuts the loop at the same EC index in every interleaving.
    ++launched_;
    auto slot = std::make_shared<Slot>();
    pending_.push_back(slot);
    ctx_->enqueue(
        [this, slot](const trt::EcRecord &rec) {
            slot->rec = rec;
            slot->gpu_done = true;
            recordEc(rec);
            if (waiting_on_ == slot) {
                // The thread is blocked in cudaStreamSynchronize on
                // this EC: wake it (the wait is the paper's B_l).
                waiting_on_.reset();
                thread_->exec(board_.spec().runtime.sync_cpu_cost,
                              [this, begin = sync_begin_] {
                                  syncReturn(begin);
                              });
            }
        },
        [this] { afterEnqueue(); });
}

void
InferenceProcess::afterEnqueue()
{
    // Fill the pipeline to 1 + pre_enqueue ECs, then block on the
    // oldest one.
    if (!stopped_ && !launchBoundReached() &&
        pending_.size() < static_cast<std::size_t>(1 + cfg_.pre_enqueue)) {
        prepAndEnqueue();
        return;
    }
    syncFront();
}

void
InferenceProcess::syncFront()
{
    JETSIM_ASSERT(!pending_.empty());
    auto slot = pending_.front();
    sync_begin_ = board_.eq().now();
    if (slot->gpu_done) {
        // Already complete: the sync call returns after its CPU cost.
        thread_->exec(board_.spec().runtime.sync_cpu_cost,
                      [this, begin = sync_begin_] { syncReturn(begin); });
    } else if (cfg_.spin_wait) {
        spinWait();
    } else {
        // Blocking sync: yield the core until the GPU signals.
        waiting_on_ = slot;
    }
}

void
InferenceProcess::spinWait()
{
    // Poll the stream in short bursts of CPU work. The burst keeps
    // the core busy, so with more processes than cores the OS
    // time-shares the spinners and completion detection is delayed
    // by scheduler waits (the paper's B_l).
    thread_->exec(cfg_.spin_chunk, [this] {
        JETSIM_ASSERT(!pending_.empty());
        if (pending_.front()->gpu_done)
            syncReturn(sync_begin_);
        else
            spinWait();
    });
}

void
InferenceProcess::syncReturn(sim::Tick sync_begin)
{
    JETSIM_ASSERT(!pending_.empty());
    const sim::Tick now = board_.eq().now();
    if (measuring_) {
        sync_span_.sample(static_cast<double>(now - sync_begin));
        const sim::Tick done = pending_.front()->rec.gpu_done;
        blocked_.sample(
            static_cast<double>(std::max<sim::Tick>(0, now - done)));
    }
    pending_.pop_front();
    if (stopped_)
        return;
    if (launchBoundReached()) {
        // Closed workload: no new ECs, but the tail of the pipeline
        // still gets its cudaStreamSynchronize calls so the process
        // quiesces cleanly.
        if (!pending_.empty())
            syncFront();
        return;
    }
    prepAndEnqueue();
}

void
InferenceProcess::recordEc(const trt::EcRecord &rec)
{
    const sim::Tick now = board_.eq().now();
    if (measuring_) {
        images_ += static_cast<std::uint64_t>(cfg_.build.batch);
        ++ecs_;
        ec_span_.sample(static_cast<double>(rec.span()));
        latency_cdf_.add(static_cast<double>(rec.span()));
        enqueue_span_.sample(
            static_cast<double>(rec.enqueue_end - rec.enqueue_begin));
        launch_api_.sample(static_cast<double>(rec.launch_api_total));
        if (last_ec_done_ != sim::kTickInvalid)
            ec_period_.sample(static_cast<double>(now - last_ec_done_));
    }
    last_ec_done_ = now;
}

void
InferenceProcess::beginMeasurement()
{
    measuring_ = true;
    window_start_ = board_.eq().now();
    images_ = 0;
    ecs_ = 0;
    ec_span_.reset();
    ec_period_.reset();
    enqueue_span_.reset();
    launch_api_.reset();
    sync_span_.reset();
    blocked_.reset();
    latency_cdf_ = prof::Cdf();
    thread_->resetStats();
}

void
InferenceProcess::endMeasurement()
{
    measuring_ = false;
    window_end_ = board_.eq().now();
}

double
InferenceProcess::throughput() const
{
    const double span = sim::toSec(window_end_ - window_start_);
    return span > 0 ? static_cast<double>(images_) / span : 0.0;
}

const trt::Engine &
InferenceProcess::engine() const
{
    JETSIM_ASSERT(engine_.has_value());
    return *engine_;
}

sim::Bytes
InferenceProcess::deviceBytes() const
{
    sim::Bytes n = 0;
    if (runtime_mem_)
        n += runtime_mem_->size();
    if (engine_mem_)
        n += engine_mem_->size();
    return n;
}

} // namespace jetsim::workload
