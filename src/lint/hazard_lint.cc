#include "lint/hazard_lint.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace jetsim::lint {

namespace {

constexpr const char *kComp = "hazard";

using Op = StreamProgram::Op;

/** One component per stream; ordered pointwise. */
using VectorClock = std::vector<int>;

bool
happensBefore(const VectorClock &a, const VectorClock &b)
{
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i] > b[i])
            return false;
    return true;
}

std::string
opLoc(const StreamProgram &p, const Op &op, int idx)
{
    std::string what;
    switch (op.kind) {
      case Op::Kind::Launch:
        what = "launch '" + op.label + "'";
        break;
      case Op::Kind::Record:
        what = "record(" + p.eventName(op.event) + ")";
        break;
      case Op::Kind::Wait:
        what = "wait(" + p.eventName(op.event) + ")";
        break;
    }
    return "op " + std::to_string(idx) + " [" +
           p.streamName(op.stream) + "] " + what;
}

} // namespace

int
StreamProgram::stream(const std::string &name)
{
    streams_.push_back(name);
    return static_cast<int>(streams_.size()) - 1;
}

int
StreamProgram::buffer(const std::string &name, sim::Bytes bytes)
{
    buffers_.push_back(name);
    buffer_bytes_.push_back(bytes);
    return static_cast<int>(buffers_.size()) - 1;
}

int
StreamProgram::event(const std::string &name)
{
    events_.push_back(name);
    return static_cast<int>(events_.size()) - 1;
}

void
StreamProgram::launch(int stream, const std::string &kernel,
                      std::vector<int> reads, std::vector<int> writes)
{
    JETSIM_ASSERT(stream >= 0 &&
                  stream < static_cast<int>(streams_.size()));
    for (const int b : reads)
        JETSIM_ASSERT(b >= 0 && b < static_cast<int>(buffers_.size()));
    for (const int b : writes)
        JETSIM_ASSERT(b >= 0 && b < static_cast<int>(buffers_.size()));
    Op op;
    op.kind = Op::Kind::Launch;
    op.stream = stream;
    op.label = kernel;
    op.reads = std::move(reads);
    op.writes = std::move(writes);
    ops_.push_back(std::move(op));
}

void
StreamProgram::record(int stream, int event)
{
    JETSIM_ASSERT(stream >= 0 &&
                  stream < static_cast<int>(streams_.size()));
    JETSIM_ASSERT(event >= 0 &&
                  event < static_cast<int>(events_.size()));
    Op op;
    op.kind = Op::Kind::Record;
    op.stream = stream;
    op.event = event;
    ops_.push_back(std::move(op));
}

void
StreamProgram::wait(int stream, int event)
{
    JETSIM_ASSERT(stream >= 0 &&
                  stream < static_cast<int>(streams_.size()));
    JETSIM_ASSERT(event >= 0 &&
                  event < static_cast<int>(events_.size()));
    Op op;
    op.kind = Op::Kind::Wait;
    op.stream = stream;
    op.event = event;
    ops_.push_back(std::move(op));
}

void
lintHazards(const StreamProgram &p, Report &rep)
{
    const auto &ops = p.ops();
    const int n = static_cast<int>(ops.size());
    const int ns = p.numStreams();

    // --- Match waits to records ------------------------------------
    // An event is a single synchronisation point: the first record
    // defines it; re-records are flagged (H005) and ignored, which
    // keeps every wait unambiguous.
    std::vector<int> record_of; // event id -> op index, -1 if none
    for (int i = 0; i < n; ++i) {
        const Op &op = ops[static_cast<std::size_t>(i)];
        if (op.kind != Op::Kind::Record)
            continue;
        if (op.event >= static_cast<int>(record_of.size()))
            record_of.resize(static_cast<std::size_t>(op.event) + 1,
                             -1);
        int &slot = record_of[static_cast<std::size_t>(op.event)];
        if (slot >= 0)
            rep.add(Rule::HazardReRecord, kComp, opLoc(p, op, i),
                    "event '" + p.eventName(op.event) +
                        "' already recorded by " +
                        opLoc(p, ops[static_cast<std::size_t>(slot)],
                              slot),
                    "use one event per synchronisation point");
        else
            slot = i;
    }
    auto recordOf = [&](int event) {
        return event < static_cast<int>(record_of.size())
                   ? record_of[static_cast<std::size_t>(event)]
                   : -1;
    };

    // --- Build the happens-before edge list ------------------------
    // Program order per stream, plus record -> wait edges.
    std::vector<std::vector<int>> succs(static_cast<std::size_t>(n));
    std::vector<int> indeg(static_cast<std::size_t>(n), 0);
    auto addEdge = [&](int from, int to) {
        succs[static_cast<std::size_t>(from)].push_back(to);
        ++indeg[static_cast<std::size_t>(to)];
    };

    std::vector<int> prev_in_stream(static_cast<std::size_t>(ns), -1);
    for (int i = 0; i < n; ++i) {
        const Op &op = ops[static_cast<std::size_t>(i)];
        int &prev = prev_in_stream[static_cast<std::size_t>(op.stream)];
        if (prev >= 0)
            addEdge(prev, i);
        prev = i;

        if (op.kind == Op::Kind::Wait) {
            const int rec = recordOf(op.event);
            if (rec < 0)
                rep.add(Rule::HazardUnrecordedWait, kComp,
                        opLoc(p, op, i),
                        "event '" + p.eventName(op.event) +
                            "' is never recorded; the wait "
                            "establishes no ordering",
                        "record the event on the producing stream "
                        "before this wait");
            else if (ops[static_cast<std::size_t>(rec)].stream !=
                     op.stream ||
                     rec > i)
                // Same-stream record-before-wait is already covered
                // by program order; everything else (cross-stream,
                // or a wait issued before its own stream records the
                // event — a self-deadlock) gets a real edge.
                addEdge(rec, i);
        }
    }

    // --- Cycle check (deadlock) ------------------------------------
    // Kahn's algorithm; anything left over sits on a cycle of
    // record/wait + program-order edges and can never execute.
    std::vector<int> topo;
    topo.reserve(static_cast<std::size_t>(n));
    {
        std::vector<int> q;
        std::vector<int> deg = indeg;
        for (int i = 0; i < n; ++i)
            if (deg[static_cast<std::size_t>(i)] == 0)
                q.push_back(i);
        while (!q.empty()) {
            const int i = q.back();
            q.pop_back();
            topo.push_back(i);
            for (const int s : succs[static_cast<std::size_t>(i)])
                if (--deg[static_cast<std::size_t>(s)] == 0)
                    q.push_back(s);
        }
        if (static_cast<int>(topo.size()) != n) {
            std::string members;
            for (int i = 0; i < n; ++i)
                if (deg[static_cast<std::size_t>(i)] > 0) {
                    if (!members.empty())
                        members += "; ";
                    members += opLoc(
                        p, ops[static_cast<std::size_t>(i)], i);
                }
            rep.add(Rule::HazardDeadlock, kComp, "",
                    "event-wait cycle: {" + members +
                        "} can never execute",
                    "a stream must not wait on an event recorded "
                    "after work that waits on it");
            return; // clocks are undefined on a cyclic program
        }
    }

    // --- Vector clocks over the DAG --------------------------------
    std::vector<VectorClock> clock(
        static_cast<std::size_t>(n),
        VectorClock(static_cast<std::size_t>(ns), 0));
    {
        std::vector<VectorClock> incoming(
            static_cast<std::size_t>(n),
            VectorClock(static_cast<std::size_t>(ns), 0));
        for (const int i : topo) {
            VectorClock &c = clock[static_cast<std::size_t>(i)];
            c = incoming[static_cast<std::size_t>(i)];
            ++c[static_cast<std::size_t>(
                ops[static_cast<std::size_t>(i)].stream)];
            for (const int s : succs[static_cast<std::size_t>(i)]) {
                VectorClock &in =
                    incoming[static_cast<std::size_t>(s)];
                for (int k = 0; k < ns; ++k)
                    in[static_cast<std::size_t>(k)] = std::max(
                        in[static_cast<std::size_t>(k)],
                        c[static_cast<std::size_t>(k)]);
            }
        }
    }

    // --- Conflicting concurrent accesses ---------------------------
    struct Access
    {
        int op;
        bool write;
    };
    std::vector<std::vector<Access>> by_buffer;
    for (int i = 0; i < n; ++i) {
        const Op &op = ops[static_cast<std::size_t>(i)];
        if (op.kind != Op::Kind::Launch)
            continue;
        auto note = [&](int buf, bool write) {
            if (buf >= static_cast<int>(by_buffer.size()))
                by_buffer.resize(static_cast<std::size_t>(buf) + 1);
            by_buffer[static_cast<std::size_t>(buf)].push_back(
                {i, write});
        };
        for (const int b : op.reads)
            note(b, false);
        for (const int b : op.writes)
            note(b, true);
    }

    for (std::size_t buf = 0; buf < by_buffer.size(); ++buf) {
        const auto &accesses = by_buffer[buf];
        for (std::size_t x = 0; x < accesses.size(); ++x) {
            for (std::size_t y = x + 1; y < accesses.size(); ++y) {
                const Access &a = accesses[x];
                const Access &b = accesses[y];
                if (!a.write && !b.write)
                    continue;
                const Op &oa = ops[static_cast<std::size_t>(a.op)];
                const Op &ob = ops[static_cast<std::size_t>(b.op)];
                if (oa.stream == ob.stream)
                    continue; // FIFO order serialises them
                const VectorClock &ca =
                    clock[static_cast<std::size_t>(a.op)];
                const VectorClock &cb =
                    clock[static_cast<std::size_t>(b.op)];
                if (happensBefore(ca, cb) || happensBefore(cb, ca))
                    continue;
                const Rule rule = a.write && b.write
                                      ? Rule::HazardWaw
                                      : Rule::HazardRaw;
                const char *what = a.write && b.write
                                       ? "both write"
                                       : "read/write";
                rep.add(rule, kComp, opLoc(p, oa, a.op),
                        std::string(what) + " buffer '" +
                            p.bufferName(static_cast<int>(buf)) +
                            "' concurrently with " +
                            opLoc(p, ob, b.op),
                        "order the accesses with an event: record "
                        "after the first, wait before the second");
            }
        }
    }
}

std::vector<std::pair<int, int>>
conflictingStreamPairs(const StreamProgram &p)
{
    // Per buffer: which streams read it, which write it. The pair
    // set is tiny (streams ~= processes), so an ns*ns bitmap beats
    // anything fancier.
    const int ns = p.numStreams();
    struct BufUse
    {
        std::vector<char> reads, writes;
    };
    std::vector<BufUse> use;
    for (const auto &op : p.ops()) {
        if (op.kind != StreamProgram::Op::Kind::Launch)
            continue;
        auto note = [&](int buf, bool write) {
            if (buf >= static_cast<int>(use.size()))
                use.resize(static_cast<std::size_t>(buf) + 1);
            auto &u = use[static_cast<std::size_t>(buf)];
            u.reads.resize(static_cast<std::size_t>(ns), 0);
            u.writes.resize(static_cast<std::size_t>(ns), 0);
            (write ? u.writes : u.reads)[static_cast<std::size_t>(
                op.stream)] = 1;
        };
        for (const int b : op.reads)
            note(b, false);
        for (const int b : op.writes)
            note(b, true);
    }

    std::vector<char> conflict(
        static_cast<std::size_t>(ns) * static_cast<std::size_t>(ns),
        0);
    for (const auto &u : use) {
        if (u.writes.empty())
            continue;
        for (int a = 0; a < ns; ++a) {
            if (!u.reads[static_cast<std::size_t>(a)] &&
                !u.writes[static_cast<std::size_t>(a)])
                continue;
            for (int b = a + 1; b < ns; ++b) {
                const bool b_touches =
                    u.reads[static_cast<std::size_t>(b)] ||
                    u.writes[static_cast<std::size_t>(b)];
                const bool one_writes =
                    u.writes[static_cast<std::size_t>(a)] ||
                    u.writes[static_cast<std::size_t>(b)];
                if (b_touches && one_writes)
                    conflict[static_cast<std::size_t>(a) *
                                 static_cast<std::size_t>(ns) +
                             static_cast<std::size_t>(b)] = 1;
            }
        }
    }

    std::vector<std::pair<int, int>> pairs;
    for (int a = 0; a < ns; ++a)
        for (int b = a + 1; b < ns; ++b)
            if (conflict[static_cast<std::size_t>(a) *
                             static_cast<std::size_t>(ns) +
                         static_cast<std::size_t>(b)])
                pairs.emplace_back(a, b);
    return pairs;
}

} // namespace jetsim::lint
