#include "lint/finding.hh"

#include <cstdio>
#include <sstream>

#include "check/reporter.hh"

namespace jetsim::lint {

namespace {

/** Minimal JSON string escaping (quotes, backslashes, control). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
Finding::str() const
{
    const RuleInfo &info = ruleInfo(rule);
    std::string out = std::string(check::severityName(severity)) +
                      " [" + info.id + "] " + component;
    if (!location.empty())
        out += " " + location;
    out += ": " + message;
    if (!hint.empty())
        out += " (fix: " + hint + ")";
    return out;
}

void
Report::add(Rule rule, std::string component, std::string location,
            std::string message, std::string hint)
{
    add(rule, ruleInfo(rule).severity, std::move(component),
        std::move(location), std::move(message), std::move(hint));
}

void
Report::add(Rule rule, check::Severity severity, std::string component,
            std::string location, std::string message, std::string hint)
{
    Finding f;
    f.rule = rule;
    f.severity = severity;
    f.component = std::move(component);
    f.location = std::move(location);
    f.message = std::move(message);
    f.hint = std::move(hint);
    findings_.push_back(std::move(f));
}

int
Report::count(check::Severity s) const
{
    int n = 0;
    for (const auto &f : findings_)
        if (f.severity == s)
            ++n;
    return n;
}

std::vector<Finding>
Report::byRule(Rule r) const
{
    std::vector<Finding> out;
    for (const auto &f : findings_)
        if (f.rule == r)
            out.push_back(f);
    return out;
}

std::string
Report::text() const
{
    std::string out;
    for (const auto &f : findings_)
        out += f.str() + "\n";
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "jetlint: %d error(s), %d warning(s), %d info\n",
                  errors(), warnings(),
                  count(check::Severity::Info));
    out += buf;
    return out;
}

std::string
Report::json() const
{
    std::ostringstream os;
    os << "{\"schema_version\":" << kJsonSchemaVersion
       << ",\"findings\":[";
    bool first = true;
    for (const auto &f : findings_) {
        if (!first)
            os << ",";
        first = false;
        const RuleInfo &info = ruleInfo(f.rule);
        os << "{\"rule\":\"" << info.id << "\",\"title\":\""
           << info.title << "\",\"severity\":\""
           << check::severityName(f.severity) << "\",\"component\":\""
           << jsonEscape(f.component) << "\",\"location\":\""
           << jsonEscape(f.location) << "\",\"message\":\""
           << jsonEscape(f.message) << "\",\"hint\":\""
           << jsonEscape(f.hint) << "\"}";
    }
    os << "],\"errors\":" << errors() << ",\"warnings\":" << warnings()
       << ",\"infos\":" << count(check::Severity::Info) << "}";
    return os.str();
}

void
Report::toReporter() const
{
    auto &rep = check::Reporter::instance();
    for (const auto &f : findings_)
        rep.report(f.severity, check::Invariant::StaticLint,
                   f.component.c_str(), check::kTimeUnknown, "[%s] %s",
                   ruleInfo(f.rule).id, f.message.c_str());
}

} // namespace jetsim::lint
