/**
 * @file
 * The jetlint rule catalogue.
 *
 * Every ahead-of-time diagnostic the linter can produce belongs to
 * exactly one rule, identified by a stable short id ("G001") that is
 * safe to grep, suppress, or gate CI on. Rules are grouped by the
 * artifact they inspect:
 *
 *   Gxxx  graph::Network structure (cycles, shapes, dead layers)
 *   Pxxx  trt::Engine plans (precision mix, kernel plausibility)
 *   Dxxx  deployment footprint vs. a soc::DeviceSpec
 *   Cxxx  experiment/sweep configuration plausibility
 *   Hxxx  happens-before hazards over symbolic stream programs
 *
 * The catalogue is data, not behaviour: ruleInfo() backs the CLI's
 * `--list-rules`, the README table, and the default severity each
 * finding carries.
 */

#ifndef JETSIM_LINT_RULES_HH
#define JETSIM_LINT_RULES_HH

#include <vector>

#include "check/invariant.hh"

namespace jetsim::lint {

/** Every diagnostic the linter can emit. */
enum class Rule {
    // Graph structure.
    GraphCycle,          ///< G001 dependency cycle among layers
    GraphDanglingInput,  ///< G002 layer reference outside the graph
    GraphShapeMismatch,  ///< G003 consumer/producer shape disagreement
    GraphBadDims,        ///< G004 zero or negative tensor dimension
    GraphDeadLayer,      ///< G005 layer not contributing to the output
    GraphMissingInput,   ///< G006 malformed input-layer structure
    GraphBadOpParams,    ///< G007 impossible operator parameters

    // Engine plans.
    PlanPrecisionMismatch, ///< P001 kernel precision outside the plan
    PlanEmpty,             ///< P002 plan with no kernels
    PlanBadKernelNumbers,  ///< P003 non-finite/out-of-range kernel data
    PlanTcWithoutTc,       ///< P004 TC kernel on a TC-less device
    PlanBadBatch,          ///< P005 non-positive or off-grid batch
    PlanFallbackMismatch,  ///< P006 fallback count vs precision mix
    PlanNoWeightMemory,    ///< P007 compute kernels but no weight bytes

    // Deployment footprint.
    DeployOverCapacity,  ///< D001 deployment exceeds unified memory
    DeployNearCapacity,  ///< D002 deployment leaves <10 % headroom

    // Experiment configs.
    ConfigUnknownDevice,     ///< C001 device name not in the catalogue
    ConfigUnknownModel,      ///< C002 model name not in the zoo
    ConfigBadBatch,          ///< C003 batch outside the paper's grid
    ConfigBadProcesses,      ///< C004 process count implausible
    ConfigBadWindow,         ///< C005 non-positive measurement window
    ConfigPrecisionCoverage, ///< C006 precision with partial coverage
    ConfigSpatialSharing,    ///< C007 MPS-style sharing on Jetson
    ConfigBadPreEnqueue,     ///< C008 pre-enqueue depth implausible

    // Happens-before hazards.
    HazardWaw,            ///< H001 unsynchronised write/write
    HazardRaw,            ///< H002 unsynchronised read/write
    HazardDeadlock,       ///< H003 event-wait cycle
    HazardUnrecordedWait, ///< H004 wait on a never-recorded event
    HazardReRecord,       ///< H005 event recorded more than once
};

/** Static description of one rule. */
struct RuleInfo
{
    const char *id;    ///< stable short id, e.g. "G001"
    const char *title; ///< kebab-case summary, e.g. "graph-cycle"
    check::Severity severity; ///< default severity of findings
    const char *description;  ///< one-line prose for --list-rules
};

/** Catalogue entry for @p r. */
const RuleInfo &ruleInfo(Rule r);

/** Every rule in catalogue order (drives --list-rules and docs). */
const std::vector<Rule> &allRules();

} // namespace jetsim::lint

#endif // JETSIM_LINT_RULES_HH
