#include "lint/rules.hh"

namespace jetsim::lint {

namespace {

using check::Severity;

constexpr RuleInfo kRules[] = {
    {"G001", "graph-cycle", Severity::Error,
     "layer dependency cycle: the graph is not a DAG and cannot be "
     "scheduled"},
    {"G002", "dangling-input", Severity::Error,
     "layer references a producer id outside the graph"},
    {"G003", "shape-mismatch", Severity::Error,
     "consumer's recorded input or inferred output shape disagrees "
     "with its producers"},
    {"G004", "bad-dims", Severity::Error,
     "tensor shape with a zero or negative dimension"},
    {"G005", "dead-layer", Severity::Warning,
     "layer does not contribute to the network output (unreachable "
     "or unconsumed)"},
    {"G006", "missing-input-layer", Severity::Error,
     "graph does not start with a single Input layer, or a non-input "
     "layer has no producers"},
    {"G007", "bad-op-params", Severity::Error,
     "operator parameters are impossible (stride/kernel <= 0, groups "
     "not dividing channels, empty slice, ...)"},

    {"P001", "precision-mismatch", Severity::Error,
     "kernel precision is neither the requested precision nor the "
     "fp32 fallback path"},
    {"P002", "empty-plan", Severity::Error,
     "engine plan contains no kernels"},
    {"P003", "bad-kernel-numbers", Severity::Error,
     "kernel with non-finite or out-of-range flops/bytes/efficiency "
     "fields"},
    {"P004", "tc-without-tensor-cores", Severity::Error,
     "tensor-core kernel in a plan targeting a device without tensor "
     "cores (or on the fp32 path)"},
    {"P005", "bad-plan-batch", Severity::Error,
     "engine compiled for a non-positive batch size"},
    {"P006", "fallback-mismatch", Severity::Warning,
     "fallback-op count is inconsistent with the plan's precision "
     "mix"},
    {"P007", "no-weight-memory", Severity::Warning,
     "plan has compute kernels but pins no weight memory"},

    {"D001", "over-capacity", Severity::Error,
     "deployment footprint exceeds the device's available unified "
     "memory (runtime OOM, cf. paper's Nano FCN_ResNet50 failure)"},
    {"D002", "near-capacity", Severity::Warning,
     "deployment leaves less than 10 % unified-memory headroom"},

    {"C001", "unknown-device", Severity::Error,
     "device name is not in the board catalogue"},
    {"C002", "unknown-model", Severity::Error,
     "model name is not in the zoo"},
    {"C003", "bad-batch", Severity::Error,
     "batch size non-positive, or beyond the paper's swept grid "
     "(warning)"},
    {"C004", "bad-processes", Severity::Error,
     "process count non-positive, or oversubscribing every CPU core "
     "with spin-wait processes (warning)"},
    {"C005", "bad-window", Severity::Error,
     "non-positive measurement duration or negative warm-up"},
    {"C006", "partial-precision-coverage", Severity::Info,
     "device lacks native kernels for part of the model at this "
     "precision; fp32 fallbacks will dilute the result"},
    {"C007", "spatial-sharing-unsupported", Severity::Warning,
     "MPS-style spatial GPU sharing enabled on a device that "
     "time-multiplexes channels"},
    {"C008", "bad-pre-enqueue", Severity::Error,
     "negative pre-enqueue depth, or a depth far beyond trtexec "
     "practice (warning)"},

    {"H001", "waw-hazard", Severity::Error,
     "two streams write the same buffer with no happens-before edge "
     "between the writes"},
    {"H002", "raw-hazard", Severity::Error,
     "a read and a write of the same buffer on different streams "
     "with no happens-before edge"},
    {"H003", "event-wait-cycle", Severity::Error,
     "record/wait edges form a cycle: the stream program deadlocks"},
    {"H004", "wait-unrecorded-event", Severity::Warning,
     "stream waits on an event no stream records (the wait is a "
     "no-op in CUDA; ordering is not established)"},
    {"H005", "event-re-record", Severity::Warning,
     "event recorded more than once; waits are ambiguous and the "
     "detector uses the first record"},
};

} // namespace

const RuleInfo &
ruleInfo(Rule r)
{
    return kRules[static_cast<int>(r)];
}

const std::vector<Rule> &
allRules()
{
    static const std::vector<Rule> rules = [] {
        std::vector<Rule> v;
        constexpr int n =
            static_cast<int>(sizeof(kRules) / sizeof(kRules[0]));
        v.reserve(n);
        for (int i = 0; i < n; ++i)
            v.push_back(static_cast<Rule>(i));
        return v;
    }();
    return rules;
}

} // namespace jetsim::lint
