/**
 * @file
 * Static linter over the graph IR.
 *
 * Operates on a raw layer list rather than a Network so that
 * malformed graphs — the thing the linter exists to catch — can be
 * expressed at all: Network's builder API enforces topological
 * insertion, but graphs arriving from a deserialised plan, a future
 * importer, or a fault-injection test have no such guarantee.
 *
 * Checks: cycles (G001), dangling layer references (G002),
 * producer/consumer and operator shape consistency (G003),
 * non-positive dimensions (G004), dead layers (G005), input-layer
 * structure (G006) and impossible operator parameters (G007).
 */

#ifndef JETSIM_LINT_GRAPH_LINT_HH
#define JETSIM_LINT_GRAPH_LINT_HH

#include <string>
#include <vector>

#include "graph/network.hh"
#include "lint/finding.hh"

namespace jetsim::lint {

/**
 * Lint an arbitrary layer list. @p output is the id of the network
 * output; layer ids are the vector indices (a mismatching embedded
 * id is itself reported under G002).
 */
void lintLayers(const std::string &name,
                const std::vector<graph::Layer> &layers, int output,
                Report &rep);

/** Lint a built Network (the common entry point). */
void lintNetwork(const graph::Network &net, Report &rep);

} // namespace jetsim::lint

#endif // JETSIM_LINT_GRAPH_LINT_HH
