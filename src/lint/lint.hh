/**
 * @file
 * Umbrella header for the jetlint ahead-of-time analysis library.
 *
 * The paper's pitch is offline performance analysis instead of
 * trial-and-error deployment; src/lint is the static half of that
 * promise (JetSan in src/check is the runtime half). Include this to
 * get the full pipeline:
 *
 *   graph_lint   - Network structure (Gxxx rules)
 *   plan_lint    - compiled Engine plans + deployment memory (P/D)
 *   config_lint  - experiment/sweep specs, end to end (Cxxx)
 *   hazard_lint  - happens-before hazards over stream programs (H)
 *
 * Diagnostics accumulate in a lint::Report (finding.hh) and render
 * as text, JSON, or JetSan violations. The tools/jetlint CLI fronts
 * all of it; tools/ci.sh gates on error-severity findings.
 */

#ifndef JETSIM_LINT_LINT_HH
#define JETSIM_LINT_LINT_HH

#include "lint/config_lint.hh"
#include "lint/finding.hh"
#include "lint/graph_lint.hh"
#include "lint/hazard_lint.hh"
#include "lint/plan_lint.hh"
#include "lint/rules.hh"

#endif // JETSIM_LINT_LINT_HH
