#include "lint/graph_lint.hh"

#include <cstdio>

namespace jetsim::lint {

namespace {

using graph::Layer;
using graph::OpKind;
using graph::Shape;

std::string
layerLoc(const Layer &l, int id)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "layer %d (%s %s)", id,
                  opName(l.kind),
                  l.name.empty() ? "?" : l.name.c_str());
    return buf;
}

std::string
shapeStr(const Shape &s)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%dx%dx%d", s.c, s.h, s.w);
    return buf;
}

bool
validRef(int ref, std::size_t n)
{
    return ref >= 0 && ref < static_cast<int>(n);
}

/**
 * Iterative three-colour DFS over input edges; reports each back
 * edge's cycle entry point once.
 */
void
checkCycles(const std::string &comp,
            const std::vector<Layer> &layers, Report &rep)
{
    enum { White, Grey, Black };
    const std::size_t n = layers.size();
    std::vector<int> colour(n, White);

    for (std::size_t root = 0; root < n; ++root) {
        if (colour[root] != White)
            continue;
        // Stack of (node, next-input-index).
        std::vector<std::pair<int, std::size_t>> stack;
        stack.emplace_back(static_cast<int>(root), 0);
        colour[root] = Grey;
        while (!stack.empty()) {
            auto &[id, next] = stack.back();
            const auto &ins =
                layers[static_cast<std::size_t>(id)].inputs;
            bool descended = false;
            while (next < ins.size()) {
                const int in = ins[next++];
                if (!validRef(in, n))
                    continue; // reported separately under G002
                if (colour[in] == Grey) {
                    rep.add(Rule::GraphCycle, comp,
                            layerLoc(layers[static_cast<std::size_t>(
                                         id)],
                                     id),
                            "depends on layer " + std::to_string(in) +
                                " which transitively depends back on "
                                "it",
                            "break the cycle; inference graphs must "
                            "be DAGs");
                } else if (colour[in] == White) {
                    colour[in] = Grey;
                    stack.emplace_back(in, 0);
                    descended = true;
                    break;
                }
            }
            if (!descended && next >= ins.size()) {
                colour[id] = Black;
                stack.pop_back();
            }
        }
    }
}

/** Reverse-reachability from the output over valid input edges. */
std::vector<bool>
reachableFromOutput(const std::vector<Layer> &layers, int output)
{
    const std::size_t n = layers.size();
    std::vector<bool> seen(n, false);
    if (!validRef(output, n))
        return seen;
    std::vector<int> stack = {output};
    seen[static_cast<std::size_t>(output)] = true;
    while (!stack.empty()) {
        const int id = stack.back();
        stack.pop_back();
        for (const int in : layers[static_cast<std::size_t>(id)].inputs)
            if (validRef(in, n) &&
                !seen[static_cast<std::size_t>(in)]) {
                seen[static_cast<std::size_t>(in)] = true;
                stack.push_back(in);
            }
    }
    return seen;
}

void
checkShapes(const std::string &comp, const Layer &l, int id,
            const std::vector<Layer> &layers, Report &rep)
{
    const std::size_t n = layers.size();
    const auto loc = layerLoc(l, id);

    // Recorded input shape must match the first producer's output.
    if (!l.inputs.empty() && validRef(l.inputs[0], n)) {
        const Shape &prod =
            layers[static_cast<std::size_t>(l.inputs[0])].out;
        if (!(l.in == prod))
            rep.add(Rule::GraphShapeMismatch, comp, loc,
                    "recorded input shape " + shapeStr(l.in) +
                        " != producer output " + shapeStr(prod),
                    "rebuild the layer against the producer's actual "
                    "output shape");
    }

    switch (l.kind) {
      case OpKind::Add:
        // Elementwise sum needs identical operand shapes.
        if (l.inputs.size() == 2 && validRef(l.inputs[0], n) &&
            validRef(l.inputs[1], n)) {
            const Shape &a =
                layers[static_cast<std::size_t>(l.inputs[0])].out;
            const Shape &b =
                layers[static_cast<std::size_t>(l.inputs[1])].out;
            if (!(a == b))
                rep.add(Rule::GraphShapeMismatch, comp, loc,
                        "Add operands disagree: " + shapeStr(a) +
                            " vs " + shapeStr(b),
                        "insert a projection so both operands match");
        }
        break;
      case OpKind::Concat: {
        // Same spatial dims; output channels = sum of inputs.
        int c = 0;
        bool refs_ok = !l.inputs.empty();
        for (const int in : l.inputs) {
            if (!validRef(in, n)) {
                refs_ok = false;
                break;
            }
            const Shape &s = layers[static_cast<std::size_t>(in)].out;
            if (s.h != l.out.h || s.w != l.out.w)
                rep.add(Rule::GraphShapeMismatch, comp, loc,
                        "concat input " + std::to_string(in) +
                            " spatial dims " + shapeStr(s) +
                            " != output " + shapeStr(l.out));
            c += s.c;
        }
        if (refs_ok && c != l.out.c)
            rep.add(Rule::GraphShapeMismatch, comp, loc,
                    "concat output channels " +
                        std::to_string(l.out.c) +
                        " != sum of inputs " + std::to_string(c));
        break;
      }
      case OpKind::Slice:
        if (l.out.c != l.slice_to - l.slice_from)
            rep.add(Rule::GraphShapeMismatch, comp, loc,
                    "slice output channels " +
                        std::to_string(l.out.c) + " != range width " +
                        std::to_string(l.slice_to - l.slice_from));
        break;
      case OpKind::Upsample:
        if (l.factor >= 1 &&
            (l.out.h != l.in.h * l.factor ||
             l.out.w != l.in.w * l.factor || l.out.c != l.in.c))
            rep.add(Rule::GraphShapeMismatch, comp, loc,
                    "upsample x" + std::to_string(l.factor) +
                        " output " + shapeStr(l.out) +
                        " inconsistent with input " + shapeStr(l.in));
        break;
      case OpKind::Conv:
      case OpKind::MaxPool:
      case OpKind::AvgPool:
        if (l.kernel > 0 && l.stride > 0) {
            const int eff_k = l.kind == OpKind::Conv
                                  ? l.dilation * (l.kernel - 1) + 1
                                  : l.kernel;
            const int h =
                (l.in.h + 2 * l.padding - eff_k) / l.stride + 1;
            const int w =
                (l.in.w + 2 * l.padding - eff_k) / l.stride + 1;
            if (l.out.h != h || l.out.w != w)
                rep.add(Rule::GraphShapeMismatch, comp, loc,
                        "window arithmetic gives " +
                            std::to_string(h) + "x" +
                            std::to_string(w) + " but layer records " +
                            std::to_string(l.out.h) + "x" +
                            std::to_string(l.out.w));
        }
        break;
      case OpKind::BatchNorm:
      case OpKind::Relu:
      case OpKind::Silu:
      case OpKind::Sigmoid:
        if (!(l.out == l.in))
            rep.add(Rule::GraphShapeMismatch, comp, loc,
                    "elementwise op changes shape: " + shapeStr(l.in) +
                        " -> " + shapeStr(l.out));
        break;
      default:
        break;
    }
}

void
checkOpParams(const std::string &comp, const Layer &l, int id,
              Report &rep)
{
    const auto loc = layerLoc(l, id);
    switch (l.kind) {
      case OpKind::Conv:
        if (l.kernel <= 0 || l.stride <= 0 || l.padding < 0 ||
            l.dilation < 1 || l.groups < 1 || l.out_channels <= 0)
            rep.add(Rule::GraphBadOpParams, comp, loc,
                    "conv with kernel=" + std::to_string(l.kernel) +
                        " stride=" + std::to_string(l.stride) +
                        " padding=" + std::to_string(l.padding) +
                        " dilation=" + std::to_string(l.dilation) +
                        " groups=" + std::to_string(l.groups) +
                        " out_channels=" +
                        std::to_string(l.out_channels));
        else if (l.in.c % l.groups != 0)
            rep.add(Rule::GraphBadOpParams, comp, loc,
                    "groups=" + std::to_string(l.groups) +
                        " does not divide input channels " +
                        std::to_string(l.in.c));
        break;
      case OpKind::MaxPool:
      case OpKind::AvgPool:
        if (l.kernel <= 0 || l.stride <= 0 || l.padding < 0)
            rep.add(Rule::GraphBadOpParams, comp, loc,
                    "pool with kernel=" + std::to_string(l.kernel) +
                        " stride=" + std::to_string(l.stride) +
                        " padding=" + std::to_string(l.padding));
        break;
      case OpKind::Linear:
        if (l.out_features <= 0 || l.in_features <= 0)
            rep.add(Rule::GraphBadOpParams, comp, loc,
                    "linear with in_features=" +
                        std::to_string(l.in_features) +
                        " out_features=" +
                        std::to_string(l.out_features));
        break;
      case OpKind::Upsample:
        if (l.factor < 2)
            rep.add(Rule::GraphBadOpParams, comp, loc,
                    "upsample factor " + std::to_string(l.factor) +
                        " (must be >= 2)");
        break;
      case OpKind::Slice:
        if (l.slice_from < 0 || l.slice_to <= l.slice_from ||
            l.slice_to > l.in.c)
            rep.add(Rule::GraphBadOpParams, comp, loc,
                    "slice range [" + std::to_string(l.slice_from) +
                        ", " + std::to_string(l.slice_to) +
                        ") over " + std::to_string(l.in.c) +
                        " channels");
        break;
      default:
        break;
    }
}

} // namespace

void
lintLayers(const std::string &name,
           const std::vector<graph::Layer> &layers, int output,
           Report &rep)
{
    const std::string comp = "graph." + name;
    const std::size_t n = layers.size();

    if (layers.empty()) {
        rep.add(Rule::GraphMissingInput, comp, "",
                "graph has no layers");
        return;
    }
    if (layers.front().kind != OpKind::Input)
        rep.add(Rule::GraphMissingInput, comp,
                layerLoc(layers.front(), 0),
                "first layer is not an Input layer");
    if (!validRef(output, n))
        rep.add(Rule::GraphDanglingInput, comp, "",
                "output id " + std::to_string(output) +
                    " is outside the graph (size " +
                    std::to_string(n) + ")");

    for (std::size_t i = 0; i < n; ++i) {
        const Layer &l = layers[i];
        const int id = static_cast<int>(i);
        const auto loc = layerLoc(l, id);

        if (l.id != id)
            rep.add(Rule::GraphDanglingInput, comp, loc,
                    "embedded id " + std::to_string(l.id) +
                        " does not match position " +
                        std::to_string(id));
        for (const int in : l.inputs)
            if (!validRef(in, n))
                rep.add(Rule::GraphDanglingInput, comp, loc,
                        "references non-existent producer " +
                            std::to_string(in),
                        "producer ids must be in [0, " +
                            std::to_string(n) + ")");
            else if (in == id)
                rep.add(Rule::GraphCycle, comp, loc,
                        "layer consumes its own output");

        if (l.kind == OpKind::Input && !l.inputs.empty())
            rep.add(Rule::GraphMissingInput, comp, loc,
                    "Input layer has producers");
        if (l.kind != OpKind::Input && l.inputs.empty())
            rep.add(Rule::GraphMissingInput, comp, loc,
                    "non-input layer has no producers",
                    "every operator must consume at least one "
                    "tensor");

        if (l.out.c <= 0 || l.out.h <= 0 || l.out.w <= 0)
            rep.add(Rule::GraphBadDims, comp, loc,
                    "output shape " + shapeStr(l.out) +
                        " has a non-positive dimension",
                    "check stride/padding against the input "
                    "resolution");
        if (l.kind != OpKind::Input &&
            (l.in.c <= 0 || l.in.h <= 0 || l.in.w <= 0))
            rep.add(Rule::GraphBadDims, comp, loc,
                    "input shape " + shapeStr(l.in) +
                        " has a non-positive dimension");

        checkOpParams(comp, l, id, rep);
        checkShapes(comp, l, id, layers, rep);
    }

    checkCycles(comp, layers, rep);

    const auto live = reachableFromOutput(layers, output);
    for (std::size_t i = 0; i < n; ++i)
        if (!live[i])
            rep.add(Rule::GraphDeadLayer, comp,
                    layerLoc(layers[i], static_cast<int>(i)),
                    "does not contribute to the network output",
                    "remove the layer or rewire the output");
}

void
lintNetwork(const graph::Network &net, Report &rep)
{
    lintLayers(net.name(), net.layers(), net.outputId(), rep);
}

} // namespace jetsim::lint
