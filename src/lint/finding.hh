/**
 * @file
 * Structured lint diagnostics.
 *
 * Every jetlint pass appends Findings to one Report. A finding pairs
 * a catalogue rule with the concrete artifact it fired on (component
 * + location), a message with the offending numbers, and — where the
 * fix is mechanical — a hint. The report renders as human-readable
 * text or as JSON for CI tooling, and can forward itself into the
 * JetSan check::Reporter so static findings obey the same
 * abort/log/count modes as runtime violations.
 */

#ifndef JETSIM_LINT_FINDING_HH
#define JETSIM_LINT_FINDING_HH

#include <string>
#include <vector>

#include "check/invariant.hh"
#include "lint/rules.hh"

namespace jetsim::lint {

/**
 * Version of the machine-readable JSON emitted by the static tools
 * (jetlint Report::json() and the jetbound CLI share it). Bump when
 * a field is renamed or removed; adding fields is compatible.
 */
inline constexpr int kJsonSchemaVersion = 1;

/** One diagnostic produced by a lint pass. */
struct Finding
{
    Rule rule = Rule::GraphCycle;
    check::Severity severity = check::Severity::Error;
    std::string component; ///< e.g. "graph.resnet50", "config"
    std::string location;  ///< e.g. "layer 12 (conv3)"; may be empty
    std::string message;   ///< what is wrong, with numbers
    std::string hint;      ///< how to fix it; may be empty

    /** One-line rendering:
     * `error [G001] graph.m layer 3: msg (fix: hint)` */
    std::string str() const;
};

/** Accumulates findings across lint passes. */
class Report
{
  public:
    /** Append a finding at the rule's default severity. */
    void add(Rule rule, std::string component, std::string location,
             std::string message, std::string hint = "");

    /** Append a finding with an explicit severity override. */
    void add(Rule rule, check::Severity severity,
             std::string component, std::string location,
             std::string message, std::string hint = "");

    const std::vector<Finding> &findings() const { return findings_; }

    int count(check::Severity s) const;
    int errors() const { return count(check::Severity::Error); }
    int warnings() const { return count(check::Severity::Warning); }

    /** Findings matching one rule (test convenience). */
    std::vector<Finding> byRule(Rule r) const;

    /** True when no error-severity findings were recorded. */
    bool clean() const { return errors() == 0; }

    /** Human-readable rendering: one line per finding + summary. */
    std::string text() const;

    /** Machine-readable rendering (stable field order). */
    std::string json() const;

    /**
     * Forward every finding into the JetSan reporter as a StaticLint
     * violation, honouring its Abort/Log/Count mode. Lets runtime
     * harnesses treat "the config never could have worked" exactly
     * like a runtime invariant violation.
     */
    void toReporter() const;

  private:
    std::vector<Finding> findings_;
};

} // namespace jetsim::lint

#endif // JETSIM_LINT_FINDING_HH
