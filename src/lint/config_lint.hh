/**
 * @file
 * Experiment/sweep configuration linter.
 *
 * lintExperiment() is the whole jetlint pipeline for one measurement
 * cell: validate the spec's names and numbers against the board
 * catalogue and the paper's Table 1 grid (Cxxx rules), then build
 * the model graph, compile the engine for the target device and run
 * the graph (Gxxx), plan (Pxxx) and deployment-footprint (Dxxx)
 * passes over the result. A config that would OOM at deploy() time —
 * the paper's over-deployed FCN_ResNet50 on the Nano — comes back
 * with a D001 error without running a single simulated tick.
 */

#ifndef JETSIM_LINT_CONFIG_LINT_HH
#define JETSIM_LINT_CONFIG_LINT_HH

#include "core/experiment.hh"
#include "lint/finding.hh"

namespace jetsim::lint {

/** Lint one homogeneous experiment cell (config + graph + plan +
 * deployment). */
void lintExperiment(const core::ExperimentSpec &spec, Report &rep);

/** Lint a heterogeneous (multi-tenant) experiment. */
void lintExperiment(const core::MixedExperimentSpec &spec, Report &rep);

} // namespace jetsim::lint

#endif // JETSIM_LINT_CONFIG_LINT_HH
