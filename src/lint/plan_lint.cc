#include "lint/plan_lint.hh"

#include <cmath>
#include <cstdio>

namespace jetsim::lint {

namespace {

std::string
planComponent(const trt::Engine &e)
{
    return "plan." + e.model() + "@" +
           std::string(soc::name(e.requestedPrecision())) + ".b" +
           std::to_string(e.batch());
}

std::string
kernelLoc(const gpu::KernelDesc &k, std::size_t i)
{
    return "kernel " + std::to_string(i) + " (" + k.name + ")";
}

void
lintEngineCommon(const trt::Engine &e, const soc::DeviceSpec *spec,
                 Report &rep)
{
    const std::string comp = planComponent(e);

    if (e.batch() <= 0)
        rep.add(Rule::PlanBadBatch, comp, "",
                "engine compiled for batch " +
                    std::to_string(e.batch()),
                "batch must be >= 1");

    if (e.kernels().empty()) {
        rep.add(Rule::PlanEmpty, comp, "",
                "plan contains no kernels",
                "the builder produced nothing to execute; rebuild "
                "from a non-empty network");
        return;
    }

    const soc::Precision req = e.requestedPrecision();
    int demoted_kernels = 0;
    bool any_compute = false;
    for (std::size_t i = 0; i < e.kernels().size(); ++i) {
        const auto &k = e.kernels()[i];
        const auto loc = kernelLoc(k, i);

        // Precision: each kernel runs at the requested precision, on
        // the fp32 fallback path, or — int8 requests only — on the
        // fp16 Q/DQ demotion path the builder uses for SiLU ops.
        // Anything else means the plan was corrupted or compiled for
        // another request.
        const bool prec_ok =
            k.prec == req || k.prec == soc::Precision::Fp32 ||
            (req == soc::Precision::Int8 &&
             k.prec == soc::Precision::Fp16);
        if (!prec_ok)
            rep.add(Rule::PlanPrecisionMismatch, comp, loc,
                    std::string("kernel precision ") +
                        soc::name(k.prec) + " is neither requested " +
                        soc::name(req) + " nor a fallback path",
                    "rebuild the engine for the requested precision");
        if (k.prec != req)
            ++demoted_kernels;
        if (k.flops > 0)
            any_compute = true;

        // Numeric plausibility of the cost-model inputs.
        if (!std::isfinite(k.flops) || k.flops < 0 ||
            !std::isfinite(k.bytes) || k.bytes < 0)
            rep.add(Rule::PlanBadKernelNumbers, comp, loc,
                    "non-finite or negative work: flops=" +
                        std::to_string(k.flops) +
                        " bytes=" + std::to_string(k.bytes));
        if (!std::isfinite(k.efficiency_scale) ||
            k.efficiency_scale <= 0)
            rep.add(Rule::PlanBadKernelNumbers, comp, loc,
                    "efficiency_scale " +
                        std::to_string(k.efficiency_scale) +
                        " outside (0, inf)");
        if (!std::isfinite(k.issue_intensity) ||
            k.issue_intensity <= 0 || k.issue_intensity > 1.0)
            rep.add(Rule::PlanBadKernelNumbers, comp, loc,
                    "issue_intensity " +
                        std::to_string(k.issue_intensity) +
                        " outside (0, 1]");
        if (!std::isfinite(k.tc_stall_factor) ||
            k.tc_stall_factor < 1.0)
            rep.add(Rule::PlanBadKernelNumbers, comp, loc,
                    "tc_stall_factor " +
                        std::to_string(k.tc_stall_factor) +
                        " below 1");
        if (k.blocks <= 0)
            rep.add(Rule::PlanBadKernelNumbers, comp, loc,
                    "launch grid of " + std::to_string(k.blocks) +
                        " blocks");

        // Tensor-core claims the silicon cannot honour.
        if (k.tc && k.prec == soc::Precision::Fp32)
            rep.add(Rule::PlanTcWithoutTc, comp, loc,
                    "fp32 kernel marked tensor-core (fp32 never maps "
                    "to TCs)");
        if (spec && k.tc && !spec->gpu.hasTensorCores())
            rep.add(Rule::PlanTcWithoutTc, comp, loc,
                    "tensor-core kernel but " + spec->name +
                        " has no tensor cores",
                    "rebuild the plan for this device");
    }

    // Fallback bookkeeping: the builder increments fallback_ops for
    // exactly the kernels it moved off the requested precision, so
    // the recorded count must equal the demoted-kernel count.
    const int nk = static_cast<int>(e.kernels().size());
    if (e.fallbackOps() < 0 || e.fallbackOps() > nk)
        rep.add(Rule::PlanFallbackMismatch, comp, "",
                "fallback_ops " + std::to_string(e.fallbackOps()) +
                    " outside [0, " + std::to_string(nk) + "]");
    else if (req != soc::Precision::Fp32 &&
             e.fallbackOps() != demoted_kernels)
        rep.add(Rule::PlanFallbackMismatch, comp, "",
                "fallback_ops records " +
                    std::to_string(e.fallbackOps()) + " but " +
                    std::to_string(demoted_kernels) +
                    " kernels run off the requested precision");

    if (any_compute && e.weightBytes() == 0)
        rep.add(Rule::PlanNoWeightMemory, comp, "",
                "plan has compute kernels but pins no weight bytes",
                "footprint fields were lost; re-serialize the "
                "engine");
}

} // namespace

void
lintEngine(const trt::Engine &e, Report &rep)
{
    lintEngineCommon(e, nullptr, rep);
}

void
lintEngine(const trt::Engine &e, const soc::DeviceSpec &spec,
           Report &rep)
{
    lintEngineCommon(e, &spec, rep);
}

void
lintDeployment(const std::vector<DeploymentGroup> &groups,
               const soc::DeviceSpec &spec, Report &rep)
{
    sim::Bytes need = 0;
    std::string what;
    int total_procs = 0;
    for (const auto &[engine, procs] : groups) {
        if (procs <= 0)
            continue;
        total_procs += procs;
        need += static_cast<sim::Bytes>(procs) *
                (spec.memory.process_runtime_overhead +
                 engine->deviceBytes());
        if (!what.empty())
            what += " + ";
        what += std::to_string(procs) + "x " + engine->model() + "@" +
                soc::name(engine->requestedPrecision()) + ".b" +
                std::to_string(engine->batch());
    }
    if (total_procs == 0)
        return;

    const sim::Bytes avail = spec.availableMemory();
    const std::string comp = "deploy." + spec.name;
    char buf[192];
    if (need > avail) {
        std::snprintf(buf, sizeof(buf),
                      "%s needs %.0f MiB but %s has %.0f MiB "
                      "available (%.0f MiB RAM - %.0f MiB OS)",
                      what.c_str(), sim::toMiB(need),
                      spec.name.c_str(), sim::toMiB(avail),
                      sim::toMiB(spec.memory.total),
                      sim::toMiB(spec.memory.os_reserved));
        rep.add(Rule::DeployOverCapacity, comp, "", buf,
                "reduce processes, batch or precision; the paper "
                "observed this OOM reboot the Jetson Nano");
    } else if (10 * (avail - need) < avail) {
        std::snprintf(buf, sizeof(buf),
                      "%s uses %.0f of %.0f MiB (%.1f %%); allocator "
                      "fragmentation or a second tenant will OOM",
                      what.c_str(), sim::toMiB(need),
                      sim::toMiB(avail),
                      100.0 * static_cast<double>(need) /
                          static_cast<double>(avail));
        rep.add(Rule::DeployNearCapacity, comp, "", buf);
    }
}

void
lintDeployment(const trt::Engine &e, int processes,
               const soc::DeviceSpec &spec, Report &rep)
{
    lintDeployment({{&e, processes}}, spec, rep);
}

} // namespace jetsim::lint
