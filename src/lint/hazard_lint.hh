/**
 * @file
 * Ahead-of-time happens-before hazard detector for stream programs.
 *
 * A StreamProgram is the symbolic form of what a deployment will
 * submit at runtime: per-stream sequences of kernel launches (each
 * with read/write sets over named device buffers — the
 * cuda::DeviceBuffer allocations of the real run), event records and
 * cross-stream event waits. The detector runs vector clocks over the
 * happens-before graph that ordering induces:
 *
 *  - program order within one stream (channels are FIFOs),
 *  - record(e) -> wait(e) synchronisation edges.
 *
 * Two conflicting accesses (at least one write) to the same buffer
 * from different streams with incomparable clocks are flagged as
 * WAW (H001) or RAW/WAR (H002) hazards — the racecheck analysis, but
 * before a single simulated tick. Cycles through record/wait edges
 * are deadlocks (H003); waits on never-recorded events are H004.
 */

#ifndef JETSIM_LINT_HAZARD_LINT_HH
#define JETSIM_LINT_HAZARD_LINT_HH

#include <string>
#include <utility>
#include <vector>

#include "lint/finding.hh"
#include "sim/types.hh"

namespace jetsim::lint {

/** Symbolic model of the work a deployment submits. */
class StreamProgram
{
  public:
    /** Declare a stream; returns its id. */
    int stream(const std::string &name);

    /**
     * Declare a device buffer; returns its id. @p bytes sizes the
     * allocation for the memory high-water analysis (src/absint);
     * 0 (the hazard-only default) means "size unknown".
     */
    int buffer(const std::string &name, sim::Bytes bytes = 0);

    /** Declare an event; returns its id. */
    int event(const std::string &name);

    /**
     * Append a kernel launch to @p stream's program, reading the
     * buffers in @p reads and writing those in @p writes.
     */
    void launch(int stream, const std::string &kernel,
                std::vector<int> reads, std::vector<int> writes);

    /** Append an event record to @p stream's program. */
    void record(int stream, int event);

    /** Append a cudaStreamWaitEvent to @p stream's program. */
    void wait(int stream, int event);

    /** @name Introspection (used by the detector)
     * @{ */
    struct Op
    {
        enum class Kind { Launch, Record, Wait };
        Kind kind;
        int stream;
        std::string label; ///< kernel name; empty for record/wait
        std::vector<int> reads;
        std::vector<int> writes;
        int event = -1;
    };

    const std::vector<Op> &ops() const { return ops_; }
    int numStreams() const { return static_cast<int>(streams_.size()); }
    const std::string &streamName(int id) const { return streams_[static_cast<std::size_t>(id)]; }
    const std::string &bufferName(int id) const { return buffers_[static_cast<std::size_t>(id)]; }
    sim::Bytes bufferBytes(int id) const { return buffer_bytes_[static_cast<std::size_t>(id)]; }
    int numBuffers() const { return static_cast<int>(buffers_.size()); }
    const std::string &eventName(int id) const { return events_[static_cast<std::size_t>(id)]; }
    /** @} */

  private:
    std::vector<std::string> streams_;
    std::vector<std::string> buffers_;
    std::vector<sim::Bytes> buffer_bytes_;
    std::vector<std::string> events_;
    std::vector<Op> ops_;
};

/** Run the happens-before analysis; findings carry rules H001-H005. */
void lintHazards(const StreamProgram &p, Report &rep);

/**
 * Dependence relation for the model checker (src/mc): every stream
 * pair (a, b), a < b, whose programs contain at least one conflicting
 * access — same buffer, at least one write — regardless of any
 * record/wait ordering between them. Synchronisation edges are
 * deliberately ignored: the checker derives *potential* dependence
 * (may the streams' actions ever fail to commute?), so sync that
 * merely orders a conflict must not hide it. Stream pairs absent
 * from the result are independent: their submissions touch disjoint
 * buffers, so swapping adjacent actions of the two streams cannot
 * change any reachable state — the commutativity fact jetmc's
 * partial-order reduction prunes with.
 */
std::vector<std::pair<int, int>>
conflictingStreamPairs(const StreamProgram &p);

} // namespace jetsim::lint

#endif // JETSIM_LINT_HAZARD_LINT_HH
