/**
 * @file
 * Static linter over compiled engine plans and their deployment
 * footprint.
 *
 * The device-free overload checks internal plan consistency
 * (precision mix vs. request, kernel number sanity, fallback
 * bookkeeping). The device-aware overload additionally validates the
 * plan against the target's execution paths (tensor-core kernels on
 * TC-less silicon, P004) and is what jetlint runs for a
 * model/device/precision cell.
 *
 * lintDeployment() is the ahead-of-time form of the paper's central
 * deployment question: does N processes x this engine fit in unified
 * memory? It reproduces the Nano FCN_ResNet50 over-deployment OOM as
 * a D001 error before a single simulated tick.
 */

#ifndef JETSIM_LINT_PLAN_LINT_HH
#define JETSIM_LINT_PLAN_LINT_HH

#include <utility>
#include <vector>

#include "lint/finding.hh"
#include "soc/device_spec.hh"
#include "trt/engine.hh"

namespace jetsim::lint {

/** Lint a plan's internal consistency. */
void lintEngine(const trt::Engine &e, Report &rep);

/** Lint a plan against the device it will execute on. */
void lintEngine(const trt::Engine &e, const soc::DeviceSpec &spec,
                Report &rep);

/**
 * One engine replicated over a process group, the unit of the
 * paper's concurrency sweeps.
 */
using DeploymentGroup = std::pair<const trt::Engine *, int>;

/**
 * Check that a (possibly heterogeneous) deployment fits the
 * device's unified memory: sum over groups of
 * processes x (CUDA runtime overhead + engine footprint) against
 * DeviceSpec::availableMemory().
 */
void lintDeployment(const std::vector<DeploymentGroup> &groups,
                    const soc::DeviceSpec &spec, Report &rep);

/** Single-model convenience (device x model x processes cell). */
void lintDeployment(const trt::Engine &e, int processes,
                    const soc::DeviceSpec &spec, Report &rep);

} // namespace jetsim::lint

#endif // JETSIM_LINT_PLAN_LINT_HH
