#include "lint/config_lint.hh"

#include <algorithm>
#include <cstdio>

#include "lint/graph_lint.hh"
#include "lint/plan_lint.hh"
#include "models/zoo.hh"
#include "trt/builder.hh"

namespace jetsim::lint {

namespace {

constexpr const char *kComp = "config";

/** The paper's swept batch sizes (Table 1 methodology grid). */
constexpr int kPaperMaxBatch = 32;

/** trtexec keeps one batch pre-enqueued; a handful is defensible. */
constexpr int kMaxSanePreEnqueue = 8;

bool
knownModel(const std::string &name)
{
    const auto &all = models::allModelNames();
    return std::find(all.begin(), all.end(), name) != all.end();
}

std::string
joined(const std::vector<std::string> &names)
{
    std::string out;
    for (const auto &n : names) {
        if (!out.empty())
            out += ", ";
        out += n;
    }
    return out;
}

/** Names/numbers every spec flavour shares. Returns false when the
 * spec is too broken to build engines for. */
bool
lintCommon(const std::string &device, int pre_enqueue,
           bool spatial_sharing, sim::Tick warmup, sim::Tick duration,
           Report &rep)
{
    bool buildable = true;

    const auto dev = soc::findDevice(device);
    if (!dev) {
        rep.add(Rule::ConfigUnknownDevice, kComp, "",
                "unknown device '" + device + "'",
                "expected one of: " + joined(soc::deviceNames()));
        buildable = false;
    }

    if (duration <= 0)
        rep.add(Rule::ConfigBadWindow, kComp, "",
                "measurement duration " +
                    std::to_string(sim::toSec(duration)) + " s",
                "the window must be positive");
    if (warmup < 0)
        rep.add(Rule::ConfigBadWindow, kComp, "",
                "negative warm-up " +
                    std::to_string(sim::toSec(warmup)) + " s");

    if (pre_enqueue < 0)
        rep.add(Rule::ConfigBadPreEnqueue, kComp, "",
                "pre-enqueue depth " + std::to_string(pre_enqueue));
    else if (pre_enqueue > kMaxSanePreEnqueue)
        rep.add(Rule::ConfigBadPreEnqueue, check::Severity::Warning,
                kComp, "",
                "pre-enqueue depth " + std::to_string(pre_enqueue) +
                    " far beyond trtexec practice (1)",
                "each queued batch pins another I/O buffer set");

    // Only the server-class A40 has MPS; every Jetson board
    // time-multiplexes channels.
    if (spatial_sharing && dev && dev->name != "a40")
        rep.add(Rule::ConfigSpatialSharing, kComp, "",
                dev->name + " time-multiplexes GPU channels; MPS-"
                            "style spatial sharing is hypothetical "
                            "(ablation A5 only)",
                "disable spatial_sharing for paper-faithful runs");

    return buildable;
}

/** One workload group's model/precision/batch/processes. Returns
 * false when engines cannot be built from it. */
bool
lintWorkload(const std::string &model, soc::Precision precision,
             int batch, int processes, const soc::DeviceSpec *dev,
             Report &rep)
{
    bool buildable = true;

    if (!knownModel(model)) {
        rep.add(Rule::ConfigUnknownModel, kComp, "",
                "unknown model '" + model + "'",
                "expected one of: " + joined(models::allModelNames()));
        buildable = false;
    }

    if (batch <= 0) {
        rep.add(Rule::ConfigBadBatch, kComp, "",
                "batch " + std::to_string(batch),
                "engines are compiled for a fixed batch >= 1");
        buildable = false;
    } else if (batch > kPaperMaxBatch) {
        rep.add(Rule::ConfigBadBatch, check::Severity::Warning, kComp,
                "",
                "batch " + std::to_string(batch) +
                    " beyond the paper's swept grid (max " +
                    std::to_string(kPaperMaxBatch) + ")",
                "results will extrapolate outside calibrated "
                "territory");
    }

    if (processes <= 0) {
        rep.add(Rule::ConfigBadProcesses, kComp, "",
                "process count " + std::to_string(processes),
                "a cell needs at least one process");
        buildable = false;
    } else if (dev && processes > dev->totalCores()) {
        rep.add(Rule::ConfigBadProcesses, check::Severity::Warning,
                kComp, "",
                std::to_string(processes) +
                    " spin-wait processes oversubscribe " + dev->name +
                    "'s " + std::to_string(dev->totalCores()) +
                    " CPU cores",
                "expect heavy blocking-time inflation (paper S7)");
    }

    if (dev && dev->precisionCoverage(precision) < 1.0) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s covers only %.0f %% of layer types at %s; "
                      "the rest falls back to fp32 (paper S6.1.1)",
                      dev->name.c_str(),
                      100.0 * dev->precisionCoverage(precision),
                      soc::name(precision));
        rep.add(Rule::ConfigPrecisionCoverage, kComp, "", buf);
    }

    return buildable;
}

} // namespace

void
lintExperiment(const core::ExperimentSpec &spec, Report &rep)
{
    const auto dev = soc::findDevice(spec.device);
    bool buildable =
        lintCommon(spec.device, spec.pre_enqueue, spec.spatial_sharing,
                   spec.warmup, spec.duration, rep);
    buildable &= lintWorkload(spec.model, spec.precision, spec.batch,
                              spec.processes, dev ? &*dev : nullptr,
                              rep);
    if (!buildable || !dev)
        return;

    const auto net = models::modelByName(spec.model);
    lintNetwork(net, rep);

    trt::Builder builder(*dev);
    trt::BuilderConfig cfg;
    cfg.precision = spec.precision;
    cfg.batch = spec.batch;
    const auto engine = builder.build(net, cfg);
    lintEngine(engine, *dev, rep);
    lintDeployment(engine, spec.processes, *dev, rep);
}

void
lintExperiment(const core::MixedExperimentSpec &spec, Report &rep)
{
    const auto dev = soc::findDevice(spec.device);
    bool buildable =
        lintCommon(spec.device, spec.pre_enqueue, spec.spatial_sharing,
                   spec.warmup, spec.duration, rep);

    if (spec.workloads.empty())
        rep.add(Rule::ConfigBadProcesses, kComp, "",
                "mixed experiment with no workload groups");

    for (const auto &w : spec.workloads)
        buildable &=
            lintWorkload(w.model, w.precision, w.batch, w.processes,
                         dev ? &*dev : nullptr, rep);
    if (!buildable || !dev || spec.workloads.empty())
        return;

    trt::Builder builder(*dev);
    std::vector<trt::Engine> engines;
    engines.reserve(spec.workloads.size());
    for (const auto &w : spec.workloads) {
        const auto net = models::modelByName(w.model);
        lintNetwork(net, rep);
        trt::BuilderConfig cfg;
        cfg.precision = w.precision;
        cfg.batch = w.batch;
        engines.push_back(builder.build(net, cfg));
        lintEngine(engines.back(), *dev, rep);
    }

    std::vector<DeploymentGroup> groups;
    groups.reserve(engines.size());
    for (std::size_t i = 0; i < engines.size(); ++i)
        groups.emplace_back(&engines[i],
                            spec.workloads[i].processes);
    lintDeployment(groups, *dev, rep);
}

} // namespace jetsim::lint
