/**
 * @file
 * Chrome-trace (chrome://tracing / Perfetto) export of GPU kernel
 * timelines — the Nsight-Systems-timeline analogue of our tracer.
 *
 * Each executed kernel becomes a complete ("X") event; each process
 * channel maps to a trace thread, so concurrent workloads render as
 * parallel lanes exactly like an nsys GPU row.
 */

#ifndef JETSIM_PROF_CHROME_TRACE_HH
#define JETSIM_PROF_CHROME_TRACE_HH

#include <string>
#include <vector>

#include "gpu/engine.hh"
#include "prof/name_id.hh"

namespace jetsim::prof {

/**
 * Collects kernel records into an in-memory Chrome trace.
 *
 * Installs itself as the GPU engine's trace hook on attach(); the
 * engine supports one hook at a time, so do not combine with a
 * simultaneously-attached NsightTracer on the same engine.
 */
class ChromeTraceExporter
{
  public:
    explicit ChromeTraceExporter(gpu::GpuEngine &engine);
    ~ChromeTraceExporter();

    /** Start capturing kernel events. */
    void attach();

    /** Stop capturing (keeps collected events). */
    void detach();

    /** Drop collected events. */
    void clear() { events_.clear(); }

    std::size_t eventCount() const { return events_.size(); }

    /** Render the Chrome trace JSON document. */
    std::string json() const;

    /**
     * Write json() to @p path.
     * @return false when the file cannot be written.
     */
    bool writeFile(const std::string &path) const;

  private:
    struct Event
    {
        /** Interned kernel name; resolved to a string in json(). */
        NameId name_id;
        int channel;
        sim::Tick start;
        sim::Tick end;
        soc::Precision prec;
        bool tc;
    };

    gpu::GpuEngine &engine_;
    bool attached_ = false;
    std::vector<Event> events_;
};

} // namespace jetsim::prof

#endif // JETSIM_PROF_CHROME_TRACE_HH
