#include "prof/nsight.hh"

namespace jetsim::prof {

NsightTracer::NsightTracer(soc::Board &board, gpu::GpuEngine &engine,
                           sim::Tick counter_interval)
    : board_(board), engine_(engine), interval_(counter_interval)
{
}

NsightTracer::~NsightTracer()
{
    if (attached_)
        detach();
}

void
NsightTracer::attach()
{
    if (attached_)
        return;
    attached_ = true;

    engine_.setTraceHook([this](const gpu::KernelRecord &rec) {
        ++kernel_count_;
        duration_.sample(static_cast<double>(rec.end - rec.start));
        wait_.sample(static_cast<double>(rec.start - rec.submit));
    });

    if (intrusion_) {
        engine_.setExtraKernelOverhead(kPerKernelOverhead);
        board_.setLaunchOverheadFactor(kLaunchOverheadFactor);
    }

    pending_ = board_.eq().scheduleIn(
        interval_, [this] { sampleCounters(); },
        sim::EventQueue::kPriSample);
}

void
NsightTracer::detach()
{
    if (!attached_)
        return;
    attached_ = false;
    engine_.setTraceHook(nullptr);
    engine_.setExtraKernelOverhead(0);
    board_.setLaunchOverheadFactor(1.0);
    pending_.cancel();
}

void
NsightTracer::setIntrusion(bool on)
{
    intrusion_ = on;
    if (attached_) {
        engine_.setExtraKernelOverhead(on ? kPerKernelOverhead : 0);
        board_.setLaunchOverheadFactor(on ? kLaunchOverheadFactor
                                          : 1.0);
    }
}

void
NsightTracer::reset()
{
    duration_.reset();
    wait_.reset();
    kernel_count_ = 0;
    sm_active_ = Cdf();
    issue_slot_ = Cdf();
    tc_util_ = Cdf();
}

void
NsightTracer::sampleCounters()
{
    if (!attached_)
        return;

    const auto &a = board_.activity();
    if (a.gpu_busy) {
        sm_active_.add(100.0 * a.sm_active);
        issue_slot_.add(100.0 * a.issue_slot);
        tc_util_.add(100.0 * a.tc_util);
    }

    pending_ = board_.eq().scheduleIn(
        interval_, [this] { sampleCounters(); },
        sim::EventQueue::kPriSample);
}

} // namespace jetsim::prof
