#include "prof/chrome_trace.hh"

#include <cstdio>
#include <sstream>

namespace jetsim::prof {

ChromeTraceExporter::ChromeTraceExporter(gpu::GpuEngine &engine)
    : engine_(engine)
{
}

ChromeTraceExporter::~ChromeTraceExporter()
{
    if (attached_)
        detach();
}

void
ChromeTraceExporter::attach()
{
    if (attached_)
        return;
    attached_ = true;
    engine_.setTraceHook([this](const gpu::KernelRecord &rec) {
        NameId id = rec.desc->name_id;
        if (id == kInvalidNameId)
            id = internName(rec.desc->name); // hand-built descriptor
        events_.push_back(Event{id, rec.channel, rec.start, rec.end,
                                rec.desc->prec, rec.desc->tc});
    });
}

void
ChromeTraceExporter::detach()
{
    if (!attached_)
        return;
    attached_ = false;
    engine_.setTraceHook(nullptr);
}

std::string
ChromeTraceExporter::json() const
{
    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const auto &e : events_) {
        if (!first)
            os << ",";
        first = false;
        // Kernel names contain only [A-Za-z0-9._+/-]; no escaping
        // needed for JSON strings.
        os << "{\"name\":\"" << nameOf(e.name_id) << "\",\"ph\":\"X\""
           << ",\"ts\":" << sim::toUsec(e.start)
           << ",\"dur\":" << sim::toUsec(e.end - e.start)
           << ",\"pid\":0,\"tid\":" << e.channel
           << ",\"args\":{\"precision\":\"" << soc::name(e.prec)
           << "\",\"tensor_cores\":" << (e.tc ? "true" : "false")
           << "}}";
    }
    os << "],\"displayTimeUnit\":\"ms\"}";
    return os.str();
}

bool
ChromeTraceExporter::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string doc = json();
    const bool ok =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    return ok;
}

} // namespace jetsim::prof
