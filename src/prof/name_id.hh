/**
 * @file
 * prof::NameId — the profiling layers' handle for interned kernel
 * and layer names.
 *
 * The registry itself lives in sim (gpu::KernelDesc carries an id and
 * gpu must not depend on prof); this header gives the profiling code
 * its natural spelling. Intern at engine-build time, accumulate into
 * dense vectors keyed by id on the hot path, resolve strings only at
 * report time.
 */

#ifndef JETSIM_PROF_NAME_ID_HH
#define JETSIM_PROF_NAME_ID_HH

#include "sim/name_registry.hh"

namespace jetsim::prof {

using NameId = sim::NameId;
inline constexpr NameId kInvalidNameId = sim::kInvalidNameId;

using sim::internName;
using sim::internedNameCount;
using sim::nameOf;

} // namespace jetsim::prof

#endif // JETSIM_PROF_NAME_ID_HH
