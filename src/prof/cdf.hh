/**
 * @file
 * Empirical CDFs — the presentation form of the paper's Fig 5/10.
 */

#ifndef JETSIM_PROF_CDF_HH
#define JETSIM_PROF_CDF_HH

#include <cstddef>
#include <string>
#include <vector>

namespace jetsim::prof {

/**
 * Collects scalar samples and answers quantile / cumulative-fraction
 * queries. Samples are sorted lazily on first query.
 */
class Cdf
{
  public:
    /** Record one sample. */
    void add(double x);

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /** Quantile in [0,1]; linear interpolation between order stats. */
    double quantile(double q) const;

    double median() const { return quantile(0.5); }
    double min() const { return quantile(0.0); }
    double max() const { return quantile(1.0); }
    double mean() const;

    /** Fraction of samples <= @p x. */
    double fractionBelow(double x) const;

    /**
     * Evenly spaced CDF curve: @p points (x, F(x)) pairs covering the
     * sample range — the series a plotting script would consume.
     */
    std::vector<std::pair<double, double>> curve(int points = 21) const;

    /**
     * Render a fixed-width ASCII summary line of selected quantiles,
     * e.g. "p10=..  p50=..  p90=..  max=..".
     */
    std::string summary() const;

    /**
     * Raw samples in their current order (sorted iff a quantile-style
     * query already ran). Exposed so the result cache can serialise a
     * CDF losslessly; quantiles over the round-tripped samples are
     * bit-identical to the original's.
     */
    const std::vector<double> &samples() const { return samples_; }

  private:
    void ensureSorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

} // namespace jetsim::prof

#endif // JETSIM_PROF_CDF_HH
