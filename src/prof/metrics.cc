#include "prof/metrics.hh"

namespace jetsim::prof {

const std::vector<MetricInfo> &
metricCatalog()
{
    static const std::vector<MetricInfo> catalog = {
        {"throughput", "Throughput",
         "Total number of images processed in unit time", "img/s",
         MetricLevel::Soc, MetricSource::Trtexec},
        {"power", "Power", "Power consumption in Watt", "W",
         MetricLevel::Soc, MetricSource::JetsonStats},
        {"gpu_util", "GPU Utilisation",
         "GPU compute time / total wall time", "%",
         MetricLevel::Gpu, MetricSource::JetsonStats},
        {"gpu_mem", "GPU Memory", "GPU memory usage", "%",
         MetricLevel::Gpu, MetricSource::JetsonStats},
        {"sm_issue", "SM Issue Cycles",
         "SM cycles with an instruction issued", "%",
         MetricLevel::Gpu, MetricSource::NsightSystems},
        {"sm_active", "SM Active Cycles",
         "SM cycles with at least 1 warp", "%",
         MetricLevel::Gpu, MetricSource::NsightSystems},
        {"tc_util", "TC Utilization",
         "TC active cycles / total cycles", "%",
         MetricLevel::Gpu, MetricSource::NsightSystems},
        {"launch", "Launch Stats",
         "Time GPU spends on kernel launch", "us",
         MetricLevel::Kernel, MetricSource::NsightSystems},
        {"sync", "Sync Time",
         "Time GPU spends on synchronising kernels", "us",
         MetricLevel::Kernel, MetricSource::NsightSystems},
        {"ec_time", "EC Time",
         "Time to execute an ExecutionContext", "ms",
         MetricLevel::Kernel, MetricSource::NsightSystems},
    };
    return catalog;
}

const char *
levelName(MetricLevel level)
{
    switch (level) {
      case MetricLevel::Soc: return "SoC Level Metrics";
      case MetricLevel::Gpu: return "GPU Level Metrics";
      case MetricLevel::Kernel: return "Kernel Level Metrics";
    }
    return "?";
}

const char *
sourceName(MetricSource source)
{
    switch (source) {
      case MetricSource::Trtexec: return "trtexec";
      case MetricSource::JetsonStats: return "jetson-stats";
      case MetricSource::NsightSystems: return "Nsight Systems";
    }
    return "?";
}

} // namespace jetsim::prof
