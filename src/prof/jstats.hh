/**
 * @file
 * jetson-stats analogue: the phase-1 lightweight sampler.
 *
 * Periodically records board power, GPU utilisation and memory usage
 * with zero modelled intrusion — the paper's phase 1 keeps the
 * inference loop unaffected and reads these three signals.
 */

#ifndef JETSIM_PROF_JSTATS_HH
#define JETSIM_PROF_JSTATS_HH

#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "soc/board.hh"

namespace jetsim::prof {

/** Periodic low-overhead sampler of SoC-level signals. */
class JStatsSampler
{
  public:
    /**
     * @param board    the device to observe
     * @param interval sampling period (jetson-stats defaults to
     *        sub-second polling; 200 ms keeps series compact)
     */
    explicit JStatsSampler(soc::Board &board,
                           sim::Tick interval = sim::msec(200));

    /** Begin sampling; idempotent. */
    void start();

    /** Stop sampling. */
    void stop();

    /** Drop collected samples (e.g. after warm-up). */
    void reset();

    /** One polled record. */
    struct Sample
    {
        sim::Tick t;
        double power_w;      ///< average over the last interval
        double gpu_util_pct; ///< busy fraction over the interval
        double mem_pct;      ///< instantaneous memory usage
    };

    const std::vector<Sample> &samples() const { return samples_; }

    double avgPowerW() const { return power_.mean(); }
    double maxPowerW() const { return power_.max(); }
    double avgGpuUtilPct() const { return gpu_util_.mean(); }
    double avgMemPct() const { return mem_.mean(); }
    double peakMemPct() const { return mem_.max(); }

  private:
    void tick();

    soc::Board &board_;
    sim::Tick interval_;
    bool running_ = false;
    sim::EventQueue::Handle pending_;

    double last_power_integral_ = 0.0;
    double last_busy_integral_ = 0.0;
    sim::Tick last_tick_ = 0;

    std::vector<Sample> samples_;
    sim::Accumulator power_;
    sim::Accumulator gpu_util_;
    sim::Accumulator mem_;
};

} // namespace jetsim::prof

#endif // JETSIM_PROF_JSTATS_HH
