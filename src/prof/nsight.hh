/**
 * @file
 * Nsight Systems analogue: the phase-2 deep tracer.
 *
 * While attached it (a) records every kernel execution via the GPU
 * engine's trace hook, (b) samples the SM-active / issue-slot / TC
 * utilisation counters at a fixed period into CDFs (Fig 5 / Fig 10),
 * and (c) *intrudes*: per-kernel instrumentation overhead on the GPU
 * and inflated CPU launch-API costs. The paper measured a ~50 %
 * throughput reduction under Nsight; ablation A4 reproduces it.
 */

#ifndef JETSIM_PROF_NSIGHT_HH
#define JETSIM_PROF_NSIGHT_HH

#include <cstdint>

#include "gpu/engine.hh"
#include "prof/cdf.hh"
#include "sim/stats.hh"
#include "soc/board.hh"

namespace jetsim::prof {

/** Kernel-level tracer with a modelled intrusion. */
class NsightTracer
{
  public:
    /** Default intrusion parameters (calibrated to ~50 % loss). */
    static constexpr sim::Tick kPerKernelOverhead = sim::usec(40);
    static constexpr double kLaunchOverheadFactor = 1.7;

    NsightTracer(soc::Board &board, gpu::GpuEngine &engine,
                 sim::Tick counter_interval = sim::msec(1));

    ~NsightTracer();

    /** Install hooks and enable the intrusion. */
    void attach();

    /** Remove hooks and restore unprofiled behaviour. */
    void detach();

    bool attached() const { return attached_; }

    /**
     * Disable the intrusion while keeping tracing (an idealised
     * zero-overhead profiler; used by ablation A4's baseline).
     */
    void setIntrusion(bool on);

    /** Drop collected data (e.g. after warm-up). */
    void reset();

    /** @name Kernel-span statistics (ns samples)
     * @{ */
    const sim::Accumulator &kernelDuration() const { return duration_; }
    const sim::Accumulator &dispatchWait() const { return wait_; }
    std::uint64_t kernelCount() const { return kernel_count_; }
    /** @} */

    /** @name Counter CDFs (percent units)
     * Sampled at the counter interval while the GPU is busy.
     * @{ */
    const Cdf &smActiveCdf() const { return sm_active_; }
    const Cdf &issueSlotCdf() const { return issue_slot_; }
    const Cdf &tcUtilCdf() const { return tc_util_; }
    /** @} */

  private:
    void sampleCounters();

    soc::Board &board_;
    gpu::GpuEngine &engine_;
    sim::Tick interval_;
    bool attached_ = false;
    bool intrusion_ = true;
    sim::EventQueue::Handle pending_;

    sim::Accumulator duration_;
    sim::Accumulator wait_;
    std::uint64_t kernel_count_ = 0;
    Cdf sm_active_;
    Cdf issue_slot_;
    Cdf tc_util_;
};

} // namespace jetsim::prof

#endif // JETSIM_PROF_NSIGHT_HH
