/**
 * @file
 * Fixed-width table and CSV rendering for benchmark harnesses.
 *
 * Every bench binary prints the rows/series of one paper table or
 * figure; this keeps their formatting uniform.
 */

#ifndef JETSIM_PROF_REPORT_HH
#define JETSIM_PROF_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace jetsim::prof {

/** Format a double with @p prec decimals. */
std::string fmt(double v, int prec = 2);

/** Simple column-aligned table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    std::size_t rows() const { return rows_.size(); }

    /** Render with padded columns and a header rule. */
    void print(std::ostream &os) const;

    /** Render as CSV (RFC-ish: plain cells, comma separated). */
    std::string csv() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section heading ("== Fig 3: ... ==") uniformly. */
void printHeading(std::ostream &os, const std::string &title);

} // namespace jetsim::prof

#endif // JETSIM_PROF_REPORT_HH
