#include "prof/report.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "sim/logging.hh"

namespace jetsim::prof {

std::string
fmt(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    JETSIM_ASSERT(!headers_.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    JETSIM_ASSERT(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << std::string(width[c] - cells[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

std::string
Table::csv() const
{
    std::string out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out += cells[c];
            if (c + 1 < cells.size())
                out += ',';
        }
        out += '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
    return out;
}

void
printHeading(std::ostream &os, const std::string &title)
{
    os << "\n== " << title << " ==\n\n";
}

} // namespace jetsim::prof
