#include "prof/kernel_summary.hh"

#include <algorithm>

#include "core/hot_annotations.hh"

namespace jetsim::prof {

const char *
boundName(KernelBound b)
{
    switch (b) {
      case KernelBound::Compute: return "compute";
      case KernelBound::Memory: return "memory";
      case KernelBound::Latency: return "latency";
    }
    return "?";
}

KernelSummary::KernelSummary(gpu::GpuEngine &engine) : engine_(engine)
{
}

KernelSummary::~KernelSummary()
{
    if (attached_)
        detach();
}

void
KernelSummary::attach()
{
    if (attached_)
        return;
    attached_ = true;
    engine_.setTraceHook(
        [this](const gpu::KernelRecord &rec) { record(rec); });
}

void
KernelSummary::detach()
{
    if (!attached_)
        return;
    attached_ = false;
    engine_.setTraceHook(nullptr);
}

JETSIM_HOT void
KernelSummary::record(const gpu::KernelRecord &rec)
{
    const double us = sim::toUsec(rec.end - rec.start);
    NameId id = rec.desc->name_id;
    if (id == kInvalidNameId)
        JETSIM_COLD_OK("first occurrence only: hand-built descriptors intern once, then hit the cached id")
        id = internName(rec.desc->name); // hand-built descriptor
    if (id >= by_id_.size())
        JETSIM_COLD_OK("first occurrence only: per-name accumulator table grows to the kernel-name universe, then stops")
        by_id_.resize(id + 1);
    auto &acc = by_id_[id];
    ++acc.calls;
    acc.total_us += us;
    acc.compute_frac_sum += rec.timing.compute_frac;
    acc.tc_util_sum += rec.timing.tc_util;
    // Latency-bound proxy: neither compute nor bandwidth dominated.
    const bool floored = rec.timing.compute_frac < 0.5 &&
                         rec.timing.bw_util < 0.5;
    acc.floor_frac_sum += floored ? 1.0 : 0.0;
    ++total_calls_;
    total_us_ += us;
}

void
KernelSummary::clear()
{
    by_id_.clear();
    total_calls_ = 0;
    total_us_ = 0;
}

std::vector<KernelStats>
KernelSummary::table(std::size_t top) const
{
    std::vector<KernelStats> rows;
    rows.reserve(by_id_.size());
    for (NameId id = 0; id < by_id_.size(); ++id) {
        const Acc &acc = by_id_[id];
        if (acc.calls == 0)
            continue; // id interned by someone else, never recorded
        KernelStats s;
        s.name = nameOf(id);
        s.calls = acc.calls;
        s.total_us = acc.total_us;
        s.share_pct =
            total_us_ > 0 ? 100.0 * acc.total_us / total_us_ : 0.0;
        const double n = static_cast<double>(acc.calls);
        s.avg_compute_frac = acc.compute_frac_sum / n;
        s.avg_tc_util = acc.tc_util_sum / n;
        const double floor_frac = acc.floor_frac_sum / n;
        if (floor_frac > 0.5)
            s.bound = KernelBound::Latency;
        else if (s.avg_compute_frac > 0.5)
            s.bound = KernelBound::Compute;
        else
            s.bound = KernelBound::Memory;
        rows.push_back(std::move(s));
    }
    // Name tie-break so the table never depends on interning order.
    std::sort(rows.begin(), rows.end(),
              [](const KernelStats &a, const KernelStats &b) {
                  if (a.total_us != b.total_us)
                      return a.total_us > b.total_us;
                  return a.name < b.name;
              });
    if (top > 0 && rows.size() > top)
        rows.resize(top);
    return rows;
}

} // namespace jetsim::prof
