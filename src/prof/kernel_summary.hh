/**
 * @file
 * Per-kernel summary statistics — the "CUDA GPU kernel summary" view
 * Nsight Systems produces, aggregated over a run.
 *
 * Attach to a GPU engine (or feed records manually), then query the
 * per-kernel table: invocation counts, total/average residency,
 * share of GPU time, and the dominant bound (compute / memory /
 * latency) inferred from the cost-model counters.
 */

#ifndef JETSIM_PROF_KERNEL_SUMMARY_HH
#define JETSIM_PROF_KERNEL_SUMMARY_HH

#include <string>
#include <vector>

#include "gpu/engine.hh"
#include "prof/name_id.hh"

namespace jetsim::prof {

/** What limits a kernel's execution time. */
enum class KernelBound { Compute, Memory, Latency };

const char *boundName(KernelBound b);

/** Aggregated statistics for one kernel (by name). */
struct KernelStats
{
    std::string name;
    std::uint64_t calls = 0;
    double total_us = 0;
    double avg_us() const
    {
        return calls ? total_us / static_cast<double>(calls) : 0.0;
    }
    double share_pct = 0; ///< of total GPU busy time in the capture
    double avg_compute_frac = 0;
    double avg_tc_util = 0;
    KernelBound bound = KernelBound::Latency;
};

/** Collects KernelRecords and produces the summary table. */
class KernelSummary
{
  public:
    explicit KernelSummary(gpu::GpuEngine &engine);
    ~KernelSummary();

    /** Install as the engine's trace hook; one hook at a time. */
    void attach();
    void detach();

    /** Feed one record manually (e.g. from a replayed trace). */
    void record(const gpu::KernelRecord &rec);

    void clear();

    std::uint64_t totalCalls() const { return total_calls_; }
    double totalBusyUs() const { return total_us_; }

    /**
     * The summary rows, heaviest first (by total residency).
     * @param top keep only the first N rows (0 = all)
     */
    std::vector<KernelStats> table(std::size_t top = 0) const;

  private:
    struct Acc
    {
        std::uint64_t calls = 0;
        double total_us = 0;
        double compute_frac_sum = 0;
        double tc_util_sum = 0;
        double floor_frac_sum = 0;
    };

    gpu::GpuEngine &engine_;
    bool attached_ = false;
    /** Dense accumulators indexed by interned NameId: the record hot
     * path is an array index, never a string hash or compare. Strings
     * are resolved only in table(). */
    std::vector<Acc> by_id_;
    std::uint64_t total_calls_ = 0;
    double total_us_ = 0;
};

} // namespace jetsim::prof

#endif // JETSIM_PROF_KERNEL_SUMMARY_HH
