#include "prof/jstats.hh"

namespace jetsim::prof {

JStatsSampler::JStatsSampler(soc::Board &board, sim::Tick interval)
    : board_(board), interval_(interval)
{
}

void
JStatsSampler::start()
{
    if (running_)
        return;
    running_ = true;
    last_tick_ = board_.eq().now();
    last_power_integral_ = board_.powerTw().integral(last_tick_);
    last_busy_integral_ = board_.gpuBusyTw().integral(last_tick_);
    pending_ = board_.eq().scheduleIn(
        interval_, [this] { tick(); },
        sim::EventQueue::kPriSample);
}

void
JStatsSampler::stop()
{
    running_ = false;
    pending_.cancel();
}

void
JStatsSampler::reset()
{
    samples_.clear();
    power_.reset();
    gpu_util_.reset();
    mem_.reset();
    last_tick_ = board_.eq().now();
    last_power_integral_ = board_.powerTw().integral(last_tick_);
    last_busy_integral_ = board_.gpuBusyTw().integral(last_tick_);
}

void
JStatsSampler::tick()
{
    if (!running_)
        return;

    const sim::Tick now = board_.eq().now();
    const double span = static_cast<double>(now - last_tick_);

    Sample s;
    s.t = now;
    const double p_int = board_.powerTw().integral(now);
    const double b_int = board_.gpuBusyTw().integral(now);
    s.power_w = span > 0 ? (p_int - last_power_integral_) / span
                         : board_.powerW();
    s.gpu_util_pct =
        span > 0 ? 100.0 * (b_int - last_busy_integral_) / span : 0.0;
    s.mem_pct = board_.memory().usagePercent();

    last_tick_ = now;
    last_power_integral_ = p_int;
    last_busy_integral_ = b_int;

    samples_.push_back(s);
    power_.sample(s.power_w);
    gpu_util_.sample(s.gpu_util_pct);
    mem_.sample(s.mem_pct);

    pending_ = board_.eq().scheduleIn(
        interval_, [this] { tick(); },
        sim::EventQueue::kPriSample);
}

} // namespace jetsim::prof
