#include "prof/cdf.hh"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "sim/logging.hh"

namespace jetsim::prof {

void
Cdf::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

void
Cdf::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
Cdf::quantile(double q) const
{
    JETSIM_ASSERT(!samples_.empty());
    JETSIM_ASSERT(q >= 0.0 && q <= 1.0);
    ensureSorted();
    if (samples_.size() == 1)
        return samples_.front();
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= samples_.size())
        return samples_.back();
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double
Cdf::mean() const
{
    if (samples_.empty())
        return 0.0;
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
           static_cast<double>(samples_.size());
}

double
Cdf::fractionBelow(double x) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    const auto it =
        std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>>
Cdf::curve(int points) const
{
    JETSIM_ASSERT(points >= 2);
    std::vector<std::pair<double, double>> out;
    if (samples_.empty())
        return out;
    ensureSorted();
    const double lo = samples_.front();
    const double hi = samples_.back();
    out.reserve(static_cast<std::size_t>(points));
    for (int i = 0; i < points; ++i) {
        const double x =
            lo + (hi - lo) * static_cast<double>(i) / (points - 1);
        out.emplace_back(x, fractionBelow(x));
    }
    return out;
}

std::string
Cdf::summary() const
{
    if (samples_.empty())
        return "(no samples)";
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "p10=%6.2f p50=%6.2f p90=%6.2f max=%6.2f",
                  quantile(0.10), quantile(0.50), quantile(0.90),
                  max());
    return buf;
}

} // namespace jetsim::prof
