/**
 * @file
 * The metric taxonomy of the paper's Table 2.
 *
 * Three levels: SoC (throughput, power), GPU (utilisation, memory,
 * SM issue/active cycles, TC utilisation) and kernel (launch stats,
 * sync time, EC time). Each metric records which simulated profiling
 * tool produces it, mirroring the paper's tool mapping (trtexec,
 * jetson-stats, Nsight Systems).
 */

#ifndef JETSIM_PROF_METRICS_HH
#define JETSIM_PROF_METRICS_HH

#include <string>
#include <vector>

namespace jetsim::prof {

/** Metric level per the paper's Table 2. */
enum class MetricLevel { Soc, Gpu, Kernel };

/** Which simulated tool produces the metric. */
enum class MetricSource { Trtexec, JetsonStats, NsightSystems };

/** One catalogued metric. */
struct MetricInfo
{
    std::string id;          ///< stable identifier, e.g. "throughput"
    std::string name;        ///< display name as in Table 2
    std::string description; ///< Table 2 description
    std::string unit;
    MetricLevel level;
    MetricSource source;
};

/** The full Table 2 catalogue, in the paper's order. */
const std::vector<MetricInfo> &metricCatalog();

/** Display name of a level ("SoC Level Metrics", ...). */
const char *levelName(MetricLevel level);

/** Display name of a source tool. */
const char *sourceName(MetricSource source);

} // namespace jetsim::prof

#endif // JETSIM_PROF_METRICS_HH
