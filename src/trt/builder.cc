#include "trt/builder.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace jetsim::trt {

namespace {

/** Bytes per activation element at the given compute precision. */
unsigned
activationBytes(soc::Precision p)
{
    return soc::storageBytes(p);
}

/** Fixed engine metadata overhead (plan file, bindings, etc). */
constexpr sim::Bytes kEngineOverhead = 2 * sim::kMiB;

/** Builder scratch floor and per-activation scaling. */
constexpr sim::Bytes kWorkspaceFloor = 16 * sim::kMiB;

} // namespace

Builder::Builder(const soc::DeviceSpec &spec) : spec_(spec) {}

bool
Builder::supported(const FusedOp &op, soc::Precision p) const
{
    if (p == soc::Precision::Fp32)
        return true;
    const double coverage = spec_.precisionCoverage(p);
    if (coverage >= 1.0)
        return true;
    if (coverage <= 0.0)
        return false;
    // Deterministic pseudo-selection: the same fraction of layer
    // types has native kernels on every build of the same model.
    const double frac =
        static_cast<double>(sim::hashLabel(op.name) % 10000) / 10000.0;
    return frac < coverage;
}

gpu::KernelDesc
Builder::makeKernel(const FusedOp &op, soc::Precision p,
                    const BuilderConfig &cfg) const
{
    gpu::KernelDesc k;
    k.name = op.name;
    k.name_id = sim::internName(op.name);
    k.prec = p;
    k.flops = 2.0 * op.macs * cfg.batch;

    // First-layer convolutions (3-channel image input) run on tensor
    // cores via channel padding — TensorRT's specialised image-input
    // kernels — at the cost of the padded lanes' wasted math.
    const bool first_layer = op.anchor == graph::OpKind::Conv &&
                             op.in_channels > 0 && op.in_channels < 8;
    double first_layer_pad = 1.0;
    if (first_layer)
        first_layer_pad = 8.0 / op.in_channels;

    k.tc = (op.tc_eligible || first_layer) &&
           spec_.gpu.hasTensorCores() && p != soc::Precision::Fp32;
    if (k.tc)
        k.flops *= first_layer_pad;

    // Dilated convolutions execute with gather/padding overhead: the
    // tensor cores stay busy on amplified work — the FCN_ResNet50
    // signature the paper reports (near-100 % TC utilisation at
    // fp16/tf32 without matching throughput, S6.1.4).
    double bytes_amp = 1.0;
    if (op.dilated) {
        k.flops *= 2.5;
        bytes_amp = 1.3;
    }

    const unsigned abytes = activationBytes(p);
    k.bytes = (static_cast<double>(op.in_elems + op.out_elems) *
                   cfg.batch * abytes +
               static_cast<double>(op.weight_params) *
                   soc::storageBytes(p)) *
              bytes_amp;

    const double out_work =
        static_cast<double>(op.out_elems) * cfg.batch;
    k.blocks = std::max(1, static_cast<int>(out_work / 512.0));

    // Tactic quality: large regular matrix math sustains a higher
    // fraction of peak; batch improves GEMM shape with diminishing
    // returns; elementwise work stays low (it is bandwidth-bound).
    // A SiLU op demoted from an int8 request pays Q/DQ reformats
    // whose cost scales with the data volume: it forfeits the
    // larger-batch GEMM-shape gain (flat at batch 1, increasingly
    // costly at batch 16 — YoloV8n's muted batch scaling, S6.2.1).
    const bool silu_demoted = cfg.precision == soc::Precision::Int8 &&
                              op.has_silu && k.tc;
    const double batch_boost = std::pow(
        std::min(4.0, double(cfg.batch)), silu_demoted ? 0.15 : 0.3);
    const double intensity =
        op.intensityPerElem() * first_layer_pad * batch_boost;
    if (k.tc) {
        k.efficiency_scale =
            std::clamp(0.30 * std::log2(1.0 + intensity / 24.0), 0.45,
                       2.90);
        k.issue_intensity = 0.35;
    } else {
        k.efficiency_scale =
            std::clamp(0.35 * std::log2(1.0 + intensity / 48.0), 0.60,
                       1.30);
        const bool matmul = op.anchor == graph::OpKind::Conv ||
                            op.anchor == graph::OpKind::Linear;
        k.issue_intensity = matmul ? 0.70 : 0.55;
    }

    if (op.dilated) {
        // The amplified gather work sustains a poor fraction of peak
        // but keeps the tensor-core pipelines occupied (stalls count
        // as active cycles in the TC counter). Caps per precision are
        // calibrated against the paper's FCN_ResNet50 anchors
        // (tf32 ~12 img/s, fp32 ~5 img/s, int8 ~12x fp32 on Orin).
        double cap = 1.0;
        switch (p) {
          case soc::Precision::Int8: cap = 0.55; break;
          case soc::Precision::Fp16: cap = 0.85; break;
          case soc::Precision::Tf32: cap = 0.70; break;
          case soc::Precision::Fp32: cap = 1.20; break;
        }
        k.efficiency_scale = std::min(k.efficiency_scale, cap);
        // Occupied-but-stalled TC residency per precision: fp16 and
        // tf32 dilated convolutions sit near 100 % TC-active in the
        // paper's Fig 5 despite their poor throughput.
        switch (p) {
          case soc::Precision::Int8: k.tc_stall_factor = 2.0; break;
          case soc::Precision::Fp16: k.tc_stall_factor = 3.5; break;
          case soc::Precision::Tf32: k.tc_stall_factor = 6.5; break;
          case soc::Precision::Fp32: break; // CUDA path
        }
    }
    return k;
}

Engine
Builder::build(const graph::Network &net,
               const BuilderConfig &cfg) const
{
    JETSIM_ASSERT(cfg.batch >= 1);
    net.validate();

    Engine e;
    e.model_ = net.name();
    e.requested_ = cfg.precision;
    e.batch_ = cfg.batch;

    const auto ops = fuseNetwork(net);
    e.kernels_.reserve(ops.size());

    double weight_bytes = 0;
    for (const auto &op : ops) {
        soc::Precision p = cfg.precision;
        if (p == soc::Precision::Int8 && op.has_silu &&
            spec_.gpu.hasTensorCores()) {
            // TensorRT keeps a Q/DQ boundary around SiLU: the fused
            // op runs in fp16 instead — why YoloV8n's int8 gains are
            // the smallest of the three models (paper S6.1.1).
            p = soc::Precision::Fp16;
            ++e.fallback_ops_;
        } else if (!supported(op, p)) {
            if (!cfg.allow_fallback)
                sim::fatal("%s: no native %s kernel for '%s' on %s "
                           "and fallback disabled",
                           net.name().c_str(), soc::name(p),
                           op.name.c_str(), spec_.name.c_str());
            p = soc::Precision::Fp32;
            ++e.fallback_ops_;
        }
        e.kernels_.push_back(makeKernel(op, p, cfg));
        weight_bytes += static_cast<double>(op.weight_params) *
                        soc::storageBytes(p);
    }

    for (const auto &k : e.kernels_) {
        e.total_flops_ += k.flops;
        e.total_bytes_ += k.bytes;
    }

    // --- footprint ---------------------------------------------------
    e.weight_bytes_ =
        static_cast<sim::Bytes>(weight_bytes * 1.05) + kEngineOverhead;

    const unsigned abytes = activationBytes(cfg.precision);
    const auto peak_elems = net.peakActivationElems();
    e.activation_bytes_ = static_cast<sim::Bytes>(
        static_cast<double>(peak_elems) * cfg.batch * abytes * 1.3);

    const auto &in = net.layer(net.inputId()).out;
    const auto &out = net.layer(net.outputId()).out;
    // trtexec keeps one batch in flight and one pre-enqueued.
    e.io_bytes_ = static_cast<sim::Bytes>(
        2.0 * cfg.batch * abytes *
        static_cast<double>(in.elems() + out.elems()));

    e.workspace_bytes_ =
        std::max(kWorkspaceFloor,
                 static_cast<sim::Bytes>(e.activation_bytes_ * 0.6));

    return e;
}

} // namespace jetsim::trt
