#include "trt/fusion.hh"

#include <unordered_set>

#include "sim/logging.hh"

namespace jetsim::trt {

using graph::Layer;
using graph::Network;
using graph::OpKind;

double
FusedOp::intensityPerElem() const
{
    return out_elems > 0 ? macs / static_cast<double>(out_elems) : 0.0;
}

namespace {

bool
isActivation(OpKind k)
{
    return k == OpKind::Relu || k == OpKind::Silu ||
           k == OpKind::Sigmoid;
}

bool
isNoKernel(OpKind k)
{
    return k == OpKind::Concat || k == OpKind::Slice ||
           k == OpKind::Input;
}

/**
 * The single consumer of @p id, or nullptr when fanout != 1. Fusion
 * may only absorb a layer whose producer has no other consumer.
 */
const Layer *
soleConsumer(const Network &net, int id)
{
    const Layer *found = nullptr;
    for (const auto &l : net.layers()) {
        for (int in : l.inputs) {
            if (in != id)
                continue;
            if (found)
                return nullptr;
            found = &l;
        }
    }
    // The network output may not be absorbed into a later op.
    if (found && id == net.outputId())
        return nullptr;
    return found;
}

} // namespace

std::vector<FusedOp>
fuseNetwork(const Network &net)
{
    std::vector<FusedOp> ops;
    std::unordered_set<int> consumed;

    auto absorb = [&](FusedOp &op, const Layer &l) {
        op.layer_ids.push_back(l.id);
        op.macs += l.macs();
        op.weight_params += l.params();
        op.out_elems = l.out.elems();
        if (l.kind == OpKind::Silu)
            op.has_silu = true;
        if (l.kind == OpKind::Conv && l.dilation > 1)
            op.dilated = true;
        consumed.insert(l.id);
    };

    for (const auto &l : net.layers()) {
        if (consumed.count(l.id) || isNoKernel(l.kind))
            continue;

        FusedOp op;
        op.name = l.name;
        op.anchor = l.kind;
        op.in_elems = l.in.elems();
        op.in_channels = l.in.c;
        op.tc_eligible = l.tensorCoreEligible();
        absorb(op, l);

        if (l.kind == OpKind::Conv || l.kind == OpKind::Linear) {
            // Greedy pattern: [BN] [act] [Add] [act].
            int tail = l.id;
            bool saw_add = false;
            while (true) {
                const Layer *next = soleConsumer(net, tail);
                if (!next || consumed.count(next->id))
                    break;
                const bool ok =
                    next->kind == OpKind::BatchNorm ||
                    isActivation(next->kind) ||
                    (next->kind == OpKind::Add && !saw_add);
                if (!ok)
                    break;
                // Residual Add: the other input is always already
                // materialised (layers are topologically ordered), so
                // the add folds into this kernel's epilogue.
                if (next->kind == OpKind::Add)
                    saw_add = true;
                absorb(op, *next);
                tail = next->id;
            }
            if (op.layer_ids.size() > 1)
                op.name += "+fused";
        }

        ops.push_back(std::move(op));
    }

    // Every kernel-bearing layer must be covered exactly once.
    std::size_t covered = 0;
    for (const auto &o : ops)
        covered += o.layer_ids.size();
    std::size_t expected = 0;
    for (const auto &l : net.layers())
        if (!isNoKernel(l.kind))
            ++expected;
    JETSIM_ASSERT(covered == expected);

    return ops;
}

} // namespace jetsim::trt
