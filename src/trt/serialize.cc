/**
 * @file
 * Engine plan (de)serialisation.
 *
 * A plan is a line-oriented text document: a header of engine-level
 * fields followed by one `k` line per kernel. Kernel names never
 * contain whitespace (layer names use dots and '+'), so fields are
 * whitespace-separated.
 */

#include "trt/engine.hh"

#include <sstream>

#include "sim/logging.hh"

namespace jetsim::trt {

namespace {

constexpr const char *kMagic = "jetsim-engine";
constexpr int kVersion = 1;

} // namespace

std::string
Engine::serialize() const
{
    std::ostringstream os;
    os << kMagic << " v" << kVersion << "\n";
    os << "model " << model_ << "\n";
    os << "precision " << soc::name(requested_) << "\n";
    os << "batch " << batch_ << "\n";
    os << "fallback_ops " << fallback_ops_ << "\n";
    os << "weight_bytes " << weight_bytes_ << "\n";
    os << "activation_bytes " << activation_bytes_ << "\n";
    os << "io_bytes " << io_bytes_ << "\n";
    os << "workspace_bytes " << workspace_bytes_ << "\n";
    os << "kernels " << kernels_.size() << "\n";
    os.precision(17);
    for (const auto &k : kernels_) {
        os << "k " << k.name << ' ' << k.flops << ' ' << k.bytes
           << ' ' << soc::name(k.prec) << ' ' << (k.tc ? 1 : 0) << ' '
           << k.blocks << ' ' << k.efficiency_scale << ' '
           << k.issue_intensity << ' ' << k.tc_stall_factor << "\n";
    }
    os << "end\n";
    return os.str();
}

Engine
Engine::deserialize(const std::string &plan)
{
    std::istringstream is(plan);
    std::string magic, version;
    is >> magic >> version;
    if (magic != kMagic || version != "v1")
        sim::fatal("engine plan: bad header '%s %s'", magic.c_str(),
                   version.c_str());

    Engine e;
    std::string key;
    std::size_t kernel_count = 0;
    auto expect = [&](const char *want) {
        is >> key;
        if (key != want)
            sim::fatal("engine plan: expected '%s', got '%s'", want,
                       key.c_str());
    };

    std::string prec_name;
    expect("model");
    is >> e.model_;
    expect("precision");
    is >> prec_name;
    e.requested_ = soc::precisionFromName(prec_name);
    expect("batch");
    is >> e.batch_;
    expect("fallback_ops");
    is >> e.fallback_ops_;
    expect("weight_bytes");
    is >> e.weight_bytes_;
    expect("activation_bytes");
    is >> e.activation_bytes_;
    expect("io_bytes");
    is >> e.io_bytes_;
    expect("workspace_bytes");
    is >> e.workspace_bytes_;
    expect("kernels");
    is >> kernel_count;
    if (!is)
        sim::fatal("engine plan: truncated header");

    e.kernels_.reserve(kernel_count);
    for (std::size_t i = 0; i < kernel_count; ++i) {
        expect("k");
        gpu::KernelDesc k;
        int tc = 0;
        is >> k.name >> k.flops >> k.bytes >> prec_name >> tc >>
            k.blocks >> k.efficiency_scale >> k.issue_intensity >>
            k.tc_stall_factor;
        if (!is)
            sim::fatal("engine plan: truncated kernel %zu", i);
        k.prec = soc::precisionFromName(prec_name);
        k.tc = tc != 0;
        // The plan text stores only the display name; intern it so a
        // deserialised engine profiles as cheaply as a built one.
        k.name_id = sim::internName(k.name);
        e.total_flops_ += k.flops;
        e.total_bytes_ += k.bytes;
        e.kernels_.push_back(std::move(k));
    }
    expect("end");
    return e;
}

} // namespace jetsim::trt
