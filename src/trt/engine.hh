/**
 * @file
 * A compiled inference engine (the TensorRT Engine analogue).
 *
 * An Engine is immutable after building: a list of GPU kernels in
 * execution order plus the device-memory footprint the deployment
 * will pin (weights, activation workspace, pre-enqueued I/O buffers,
 * and builder scratch). Engines are compiled for a fixed batch size,
 * matching the paper's methodology (dynamic batching disabled).
 */

#ifndef JETSIM_TRT_ENGINE_HH
#define JETSIM_TRT_ENGINE_HH

#include <string>
#include <vector>

#include "gpu/kernel.hh"
#include "sim/types.hh"
#include "soc/precision.hh"

namespace jetsim::trt {

class Builder;

/** Immutable compiled plan. Move-only (kernels hold stable storage). */
class Engine
{
  public:
    Engine(Engine &&) = default;
    Engine &operator=(Engine &&) = default;
    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    const std::string &model() const { return model_; }
    soc::Precision requestedPrecision() const { return requested_; }
    int batch() const { return batch_; }

    /** Kernels in execution order; addresses stable for the engine's
     * lifetime (streams keep pointers while executing). */
    const std::vector<gpu::KernelDesc> &kernels() const
    {
        return kernels_;
    }

    /** Ops that lacked a native kernel at the requested precision and
     * fell back to the fp32 path (paper S6.1.1, Jetson Nano). */
    int fallbackOps() const { return fallback_ops_; }

    /** @name Device-memory footprint
     * @{ */
    sim::Bytes weightBytes() const { return weight_bytes_; }
    sim::Bytes activationBytes() const { return activation_bytes_; }
    sim::Bytes ioBytes() const { return io_bytes_; }
    sim::Bytes workspaceBytes() const { return workspace_bytes_; }

    /** Total bytes the deployment pins (excluding the per-process
     * CUDA runtime overhead, which MemorySpec carries). */
    sim::Bytes
    deviceBytes() const
    {
        return weight_bytes_ + activation_bytes_ + io_bytes_ +
               workspace_bytes_;
    }
    /** @} */

    /** Total numeric work per EC invocation (FLOPs at `batch`). */
    double totalFlops() const { return total_flops_; }

    /** Total DRAM traffic per EC invocation (bytes). */
    double totalBytes() const { return total_bytes_; }

    /**
     * Serialise the compiled plan to a portable text format (the
     * TensorRT plan-file analogue): build once, deploy many times
     * without re-running the builder.
     */
    std::string serialize() const;

    /** Reconstruct an engine from serialize() output; fatal() on a
     * malformed or version-mismatched plan. */
    static Engine deserialize(const std::string &plan);

  private:
    friend class Builder;
    Engine() = default;

    std::string model_;
    soc::Precision requested_ = soc::Precision::Fp16;
    int batch_ = 1;
    std::vector<gpu::KernelDesc> kernels_;
    int fallback_ops_ = 0;
    sim::Bytes weight_bytes_ = 0;
    sim::Bytes activation_bytes_ = 0;
    sim::Bytes io_bytes_ = 0;
    sim::Bytes workspace_bytes_ = 0;
    double total_flops_ = 0;
    double total_bytes_ = 0;
};

} // namespace jetsim::trt

#endif // JETSIM_TRT_ENGINE_HH
