/**
 * @file
 * Layer-fusion pass of the TensorRT-like builder.
 *
 * TensorRT collapses Conv+BN+activation (+residual Add) chains into
 * single kernels, eliminates Concat/Slice by address arithmetic, and
 * leaves pooling/upsample/linear ops as standalone kernels. This
 * pass reproduces those decisions on the graph IR so the engine's
 * kernel count and per-kernel work match what trtexec would launch.
 */

#ifndef JETSIM_TRT_FUSION_HH
#define JETSIM_TRT_FUSION_HH

#include <string>
#include <vector>

#include "graph/network.hh"

namespace jetsim::trt {

/** One fused operation: a future GPU kernel. */
struct FusedOp
{
    std::string name;            ///< anchor layer name + fused suffix
    graph::OpKind anchor;        ///< the kernel's primary operator
    std::vector<int> layer_ids;  ///< graph layers folded in, in order
    double macs = 0.0;           ///< per-image multiply-accumulates
    std::int64_t weight_params = 0;
    std::int64_t in_elems = 0;   ///< per-image input activation elems
    std::int64_t out_elems = 0;  ///< per-image output activation elems
    int in_channels = 0;         ///< anchor input channels
    bool tc_eligible = false;    ///< dense matrix math?
    /** The fused chain contains a SiLU activation (TensorRT keeps a
     * Q/DQ boundary there, demoting int8 requests to fp16). */
    bool has_silu = false;
    /** Anchor convolution is dilated (FCN backbone): executed with
     * gather overhead that amplifies the issued tensor-core work. */
    bool dilated = false;
    /** Arithmetic intensity proxy: MACs per output element. */
    double intensityPerElem() const;
};

/**
 * Fuse @p net into kernel-sized operations. Concat/Slice layers are
 * folded away (zero-kernel); every other layer lands in exactly one
 * FusedOp. Deterministic.
 */
std::vector<FusedOp> fuseNetwork(const graph::Network &net);

} // namespace jetsim::trt

#endif // JETSIM_TRT_FUSION_HH
