/**
 * @file
 * ExecutionContext: per-inference state (TensorRT analogue).
 *
 * One enqueue() call represents the inference of one batch (the
 * paper's EC_i): the owning CPU thread issues one launch API call per
 * engine kernel onto the process's stream, then the context reports
 * completion when the GPU finishes the last kernel. Multiple ECs may
 * be in flight on the stream (trtexec pre-enqueues one batch), but
 * CPU-side enqueues are naturally serialised by the owning thread.
 *
 * The per-EC record captures the quantities of the paper's kernel-
 * level analysis: total launch-API wall time (which inflates under
 * CPU contention — the K_l growth of Fig 11/12), CPU enqueue span,
 * and GPU completion time.
 */

#ifndef JETSIM_TRT_EXECUTION_CONTEXT_HH
#define JETSIM_TRT_EXECUTION_CONTEXT_HH

#include <functional>
#include <memory>

#include "cpu/scheduler.hh"
#include "cuda/stream.hh"
#include "sim/rng.hh"
#include "soc/board.hh"
#include "trt/engine.hh"

namespace jetsim::trt {

/** Timing record for one executed EC. */
struct EcRecord
{
    sim::Tick enqueue_begin = 0; ///< enqueue() entry
    sim::Tick enqueue_end = 0;   ///< last launch API returned
    sim::Tick gpu_done = 0;      ///< last kernel completed
    sim::Tick launch_api_total = 0; ///< sum of launch-API wall spans
    int kernels = 0;

    /** Wall duration of the EC (enqueue begin to GPU completion). */
    sim::Tick span() const { return gpu_done - enqueue_begin; }
};

/** Drives one engine's inference invocations. */
class ExecutionContext
{
  public:
    using DoneFn = std::function<void(const EcRecord &)>;

    /**
     * @param engine compiled plan (must outlive the context)
     * @param stream the process's CUDA stream
     * @param thread the process's enqueue thread
     * @param board  device (for timing constants and the clock)
     */
    ExecutionContext(const Engine &engine, cuda::Stream &stream,
                     cpu::Thread &thread, soc::Board &board);

    ExecutionContext(const ExecutionContext &) = delete;
    ExecutionContext &operator=(const ExecutionContext &) = delete;

    /**
     * Enqueue one batch inference. @p done fires (in GPU-completion
     * context) when the batch finishes; @p cpu_done fires (in thread
     * context) when the CPU-side launch sequence returns — the moment
     * the real enqueueV3() call would return. Must be invoked from
     * the owning thread's logic, and the caller must not issue other
     * work on the thread until @p cpu_done (real TensorRT contexts
     * are not re-entrant either).
     */
    void enqueue(DoneFn done, std::function<void()> cpu_done = nullptr);

    /** ECs enqueued over the context's lifetime. */
    std::uint64_t invocations() const { return invocations_; }

  private:
    struct Pending
    {
        EcRecord rec;
        DoneFn done;
        std::function<void()> cpu_done;
    };

    void launchNext(const std::shared_ptr<Pending> &p, std::size_t i);

    const Engine &engine_;
    cuda::Stream &stream_;
    cpu::Thread &thread_;
    soc::Board &board_;
    sim::Rng rng_;
    std::uint64_t invocations_ = 0;
};

} // namespace jetsim::trt

#endif // JETSIM_TRT_EXECUTION_CONTEXT_HH
