#include "trt/execution_context.hh"

#include "sim/logging.hh"

namespace jetsim::trt {

ExecutionContext::ExecutionContext(const Engine &engine,
                                   cuda::Stream &stream,
                                   cpu::Thread &thread,
                                   soc::Board &board)
    : engine_(engine), stream_(stream), thread_(thread), board_(board),
      rng_(board.rng().fork("ec-" + engine.model()))
{
    JETSIM_ASSERT(!engine_.kernels().empty());
}

void
ExecutionContext::enqueue(DoneFn done, std::function<void()> cpu_done)
{
    ++invocations_;
    auto p = std::make_shared<Pending>();
    p->rec.enqueue_begin = board_.eq().now();
    p->rec.kernels = static_cast<int>(engine_.kernels().size());
    p->done = std::move(done);
    p->cpu_done = std::move(cpu_done);
    launchNext(p, 0);
}

void
ExecutionContext::launchNext(const std::shared_ptr<Pending> &p,
                             std::size_t i)
{
    auto &eq = board_.eq();

    if (i == engine_.kernels().size()) {
        p->rec.enqueue_end = eq.now();
        // Wait for everything this EC submitted (stream is FIFO and
        // the caller serialises enqueues, so the tail is ours).
        stream_.onComplete(stream_.submitted(), [this, p] {
            p->rec.gpu_done = board_.eq().now();
            if (p->done)
                p->done(p->rec);
        });
        if (p->cpu_done)
            p->cpu_done();
        return;
    }

    const sim::Tick t0 = eq.now();
    const double mean =
        static_cast<double>(board_.spec().runtime.launch_cpu_cost) *
        board_.launchOverheadFactor();
    // Bounded draw (sim::kLognormalEnvelope): launch-API worst cases
    // are provable, not just unlikely (src/absint).
    const auto cost =
        static_cast<sim::Tick>(rng_.lognormalBounded(mean, 0.35));
    thread_.exec(cost, [this, p, i, t0] {
        stream_.launch(&engine_.kernels()[i]);
        p->rec.launch_api_total += board_.eq().now() - t0;
        launchNext(p, i + 1);
    });
}

} // namespace jetsim::trt
