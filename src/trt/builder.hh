/**
 * @file
 * The engine builder (TensorRT Builder analogue).
 *
 * Compiles a network for one device, batch size and requested weight
 * precision:
 *  1. run the fusion pass;
 *  2. assign each fused op its compute precision, falling back to the
 *     fp32 path when the device lacks a native kernel at the request
 *     (coverage tables in DeviceSpec — the Jetson Nano mechanism);
 *  3. select tactics: tensor-core vs CUDA-core path, launch grid and
 *     the shape-dependent efficiency/issue parameters of the kernel
 *     cost model;
 *  4. size the engine's device-memory footprint.
 */

#ifndef JETSIM_TRT_BUILDER_HH
#define JETSIM_TRT_BUILDER_HH

#include "graph/network.hh"
#include "soc/device_spec.hh"
#include "trt/engine.hh"
#include "trt/fusion.hh"

namespace jetsim::trt {

/** Build-time options (a slim TensorRT BuilderConfig). */
struct BuilderConfig
{
    soc::Precision precision = soc::Precision::Fp16;
    int batch = 1;
    /** Permit per-op fp32 fallback; when false, building a model with
     * unsupported ops fails (fatal). TensorRT's default permits it. */
    bool allow_fallback = true;
};

/** Per-device compiler from Network to Engine. */
class Builder
{
  public:
    explicit Builder(const soc::DeviceSpec &spec);

    /** Compile @p net under @p cfg. Deterministic. */
    Engine build(const graph::Network &net,
                 const BuilderConfig &cfg) const;

  private:
    /** Does the device have a native kernel for this op at @p p? */
    bool supported(const FusedOp &op, soc::Precision p) const;

    gpu::KernelDesc makeKernel(const FusedOp &op, soc::Precision p,
                               const BuilderConfig &cfg) const;

    soc::DeviceSpec spec_;
};

} // namespace jetsim::trt

#endif // JETSIM_TRT_BUILDER_HH
