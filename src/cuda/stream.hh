/**
 * @file
 * CUDA-like stream abstraction over a GPU engine channel.
 *
 * A stream is a FIFO of kernels belonging to one process. Launching
 * is asynchronous from the CPU's point of view; completion order
 * within a stream matches submission order (the engine's channels
 * are FIFOs). Completion-count bookkeeping supports events and
 * synchronisation (the paper's CudaSynchronization spans).
 */

#ifndef JETSIM_CUDA_STREAM_HH
#define JETSIM_CUDA_STREAM_HH

#include <cstdint>
#include <deque>
#include <string>

#include "gpu/engine.hh"
#include "sim/inline_fn.hh"

namespace jetsim::cuda {

/** One in-order work queue on the GPU. */
class Stream
{
  public:
    /**
     * @param engine the device's GPU engine
     * @param name   used for the engine channel (diagnostics)
     */
    Stream(gpu::GpuEngine &engine, const std::string &name);

    Stream(const Stream &) = delete;
    Stream &operator=(const Stream &) = delete;

    /**
     * Retires the engine channel: queued kernels are dropped and any
     * in-flight one completes without calling back into this object.
     * Work submitted to the channel afterwards is a JetSan
     * stream-hazard violation. The engine must outlive the stream.
     */
    ~Stream();

    /**
     * Submit @p k for execution after everything previously launched
     * on this stream. Asynchronous: returns immediately.
     */
    void launch(const gpu::KernelDesc *k);

    /** Kernels launched over the stream's lifetime. */
    std::uint64_t submitted() const { return submitted_; }

    /** Kernels completed over the stream's lifetime. */
    std::uint64_t completed() const { return completed_; }

    /** Work still queued or executing. */
    bool idle() const { return completed_ == submitted_; }

    /**
     * Invoke @p cb as soon as completed() >= @p target. Fires
     * immediately (synchronously) when already satisfied.
     */
    void onComplete(std::uint64_t target, sim::InlineFn cb);

    /** The engine channel backing this stream. */
    int channel() const { return channel_; }

  private:
    void kernelDone();

    gpu::GpuEngine &engine_;
    int channel_;
    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;

    struct Waiter
    {
        std::uint64_t target;
        sim::InlineFn cb;
    };
    std::deque<Waiter> waiters_; // sorted by target (FIFO submit order)
};

/**
 * CUDA-event analogue: captures a position in a stream at record()
 * time; wait() callbacks fire when the GPU passes that position.
 */
class Event
{
  public:
    /** Capture the current tail of @p s. */
    void record(Stream &s);

    /** True when everything before the record point has completed. */
    bool query() const;

    /**
     * Invoke @p cb when the recorded position completes (immediately
     * if already done). record() must have been called.
     */
    void wait(sim::InlineFn cb);

  private:
    Stream *stream_ = nullptr;
    std::uint64_t target_ = 0;
};

} // namespace jetsim::cuda

#endif // JETSIM_CUDA_STREAM_HH
