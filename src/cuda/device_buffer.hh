/**
 * @file
 * RAII allocation handle over the board's unified memory.
 *
 * Mirrors cudaMalloc/cudaFree semantics on an integrated-memory
 * device: there is no host/device copy, only accounting against the
 * shared pool. Allocation failure is recoverable (the caller decides
 * whether a failed deployment is fatal), matching the paper's
 * observation that over-deploying FCN_ResNet50 on the Nano exhausts
 * memory.
 */

#ifndef JETSIM_CUDA_DEVICE_BUFFER_HH
#define JETSIM_CUDA_DEVICE_BUFFER_HH

#include <optional>
#include <string>

#include "soc/unified_memory.hh"

namespace jetsim::cuda {

/** Owning handle to a unified-memory allocation. Move-only. */
class DeviceBuffer
{
  public:
    /**
     * Attempt an allocation.
     * @return nullopt when the pool cannot satisfy the request.
     */
    static std::optional<DeviceBuffer>
    tryAlloc(soc::UnifiedMemory &mem, const std::string &owner,
             sim::Bytes size);

    DeviceBuffer(DeviceBuffer &&other) noexcept;
    DeviceBuffer &operator=(DeviceBuffer &&other) noexcept;
    DeviceBuffer(const DeviceBuffer &) = delete;
    DeviceBuffer &operator=(const DeviceBuffer &) = delete;
    ~DeviceBuffer();

    sim::Bytes size() const { return size_; }

  private:
    DeviceBuffer(soc::UnifiedMemory &mem,
                 soc::UnifiedMemory::AllocId id, sim::Bytes size)
        : mem_(&mem), id_(id), size_(size)
    {}

    void release();

    soc::UnifiedMemory *mem_ = nullptr;
    soc::UnifiedMemory::AllocId id_ = soc::UnifiedMemory::kBadAlloc;
    sim::Bytes size_ = 0;
};

} // namespace jetsim::cuda

#endif // JETSIM_CUDA_DEVICE_BUFFER_HH
