#include "cuda/stream.hh"

#include "core/hot_annotations.hh"
#include "sim/logging.hh"

namespace jetsim::cuda {

Stream::Stream(gpu::GpuEngine &engine, const std::string &name)
    : engine_(engine), channel_(engine.createChannel(name))
{
}

Stream::~Stream()
{
    engine_.destroyChannel(channel_);
}

void
Stream::launch(const gpu::KernelDesc *k)
{
    ++submitted_;
    engine_.submit(channel_, k, [this] { kernelDone(); });
}

void
Stream::kernelDone()
{
    ++completed_;
    while (!waiters_.empty() && waiters_.front().target <= completed_) {
        auto cb = std::move(waiters_.front().cb);
        waiters_.pop_front();
        cb();
    }
}

void
Stream::onComplete(std::uint64_t target, sim::InlineFn cb)
{
    if (completed_ >= target) {
        cb();
        return;
    }
    JETSIM_ASSERT(target <= submitted_);
    // Targets arrive in nondecreasing order (stream FIFO discipline).
    JETSIM_ASSERT(waiters_.empty() || waiters_.back().target <= target);
    // Waiters park outside the event queue; attribute SBO misses to
    // the queue their completion will fire on.
    if (cb.onHeap())
        JETSIM_COLD_OK("SBO miss: waiter capture spilled past 48 bytes; counted, asserted zero by micro_sim --assert-sbo")
        engine_.eq().noteSboMiss();
    JETSIM_COLD_OK("amortized: waiter list bounded by outstanding host syncs")
    waiters_.push_back(Waiter{target, std::move(cb)});
}

void
Event::record(Stream &s)
{
    stream_ = &s;
    target_ = s.submitted();
}

bool
Event::query() const
{
    JETSIM_ASSERT(stream_ != nullptr);
    return stream_->completed() >= target_;
}

void
Event::wait(sim::InlineFn cb)
{
    JETSIM_ASSERT(stream_ != nullptr);
    stream_->onComplete(target_, std::move(cb));
}

} // namespace jetsim::cuda
