#include "cuda/device_buffer.hh"

namespace jetsim::cuda {

std::optional<DeviceBuffer>
DeviceBuffer::tryAlloc(soc::UnifiedMemory &mem, const std::string &owner,
                       sim::Bytes size)
{
    const auto id = mem.allocate(owner, size);
    if (id == soc::UnifiedMemory::kBadAlloc)
        return std::nullopt;
    return DeviceBuffer(mem, id, size);
}

DeviceBuffer::DeviceBuffer(DeviceBuffer &&other) noexcept
    : mem_(other.mem_), id_(other.id_), size_(other.size_)
{
    other.mem_ = nullptr;
    other.id_ = soc::UnifiedMemory::kBadAlloc;
    other.size_ = 0;
}

DeviceBuffer &
DeviceBuffer::operator=(DeviceBuffer &&other) noexcept
{
    if (this != &other) {
        release();
        mem_ = other.mem_;
        id_ = other.id_;
        size_ = other.size_;
        other.mem_ = nullptr;
        other.id_ = soc::UnifiedMemory::kBadAlloc;
        other.size_ = 0;
    }
    return *this;
}

DeviceBuffer::~DeviceBuffer()
{
    release();
}

void
DeviceBuffer::release()
{
    if (mem_ && id_ != soc::UnifiedMemory::kBadAlloc) {
        mem_->release(id_);
        mem_ = nullptr;
        id_ = soc::UnifiedMemory::kBadAlloc;
    }
}

} // namespace jetsim::cuda
