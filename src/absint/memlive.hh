/**
 * @file
 * Buffer-liveness memory high-water analysis over stream programs.
 *
 * jetlint's D001 bounds a deployment's footprint by the *sum* of all
 * allocations — sound, but ignores that buffers with provably
 * disjoint lifetimes never coexist. This analysis tightens that to an
 * interval on the peak resident bytes, using the same happens-before
 * structure the hazard detector builds (program order per stream +
 * record->wait edges):
 *
 *  - A buffer is live from its first access to its last access (a
 *    never-accessed buffer is never allocated).
 *  - Two buffers MAY overlap unless every access of one happens
 *    before every access of the other — then some legal schedule has
 *    them resident together, and the peak can reach the heaviest
 *    may-overlap clique (upper bound).
 *  - Two buffers MUST overlap when each has an access ordered before
 *    some access of the other (or they share an access): then their
 *    live ranges intersect in *every* schedule. Live ranges are
 *    intervals on the timeline, and pairwise-intersecting intervals
 *    share a common instant (Helly's theorem in one dimension), so
 *    the heaviest must-overlap clique is a peak every schedule
 *    reaches (lower bound).
 *
 * Clique weights are solved exactly (branch and bound) up to
 * kExactCliqueLimit buffers; beyond that the upper bound falls back
 * to the whole-program sum (= D001) and the lower bound to a greedy
 * clique — both still sound, just looser.
 */

#ifndef JETSIM_ABSINT_MEMLIVE_HH
#define JETSIM_ABSINT_MEMLIVE_HH

#include "lint/hazard_lint.hh"
#include "sim/types.hh"

namespace jetsim::absint {

/** Largest buffer count solved with the exact clique search. */
inline constexpr int kExactCliqueLimit = 24;

/** Result of the liveness analysis. */
struct MemBounds
{
    /** Every schedule's peak is at least this (must-overlap clique). */
    sim::Bytes peak_lo = 0;
    /** No schedule's peak exceeds this (may-overlap clique). */
    sim::Bytes peak_hi = 0;
    /** The whole-program sum, i.e. jetlint D001's bound. */
    sim::Bytes whole_sum = 0;
    /** False when peak_hi fell back to whole_sum (too many buffers
     * or a cyclic program). */
    bool exact_hi = true;
    /** The happens-before graph had a cycle (H003 deadlock): both
     * bounds degrade to the conservative envelope. */
    bool cyclic = false;
};

/** Analyze @p p. Buffer sizes come from StreamProgram::buffer()'s
 * bytes argument; zero-byte buffers contribute nothing. */
MemBounds memHighWater(const lint::StreamProgram &p);

} // namespace jetsim::absint

#endif // JETSIM_ABSINT_MEMLIVE_HH
