/**
 * @file
 * SLO pre-screening of sweep cells from static bounds alone.
 *
 * A capacity-planning sweep simulates every cell of a grid to label
 * it feasible/infeasible against an SLO. Many cells are decidable
 * without simulation: if the *lower* latency bound already violates
 * the SLO (or the memory lower bound exceeds the budget, or the
 * throughput *upper* bound misses the floor), no simulated run can
 * be feasible — the cell is provably infeasible and the simulation
 * is wasted work. Symmetrically, a cell whose upper bounds all meet
 * the SLO is provably feasible. Everything else stays Unknown and
 * must be simulated.
 *
 * Pruning is sound by construction: a pruned cell's verdict is a
 * theorem about every schedule, not a heuristic — the soundness
 * harness in tests/absint backs the underlying intervals, and
 * tests/absint/prescreen_test.cc checks that unpruned cells simulate
 * bit-identically to an unscreened sweep.
 */

#ifndef JETSIM_ABSINT_PRESCREEN_HH
#define JETSIM_ABSINT_PRESCREEN_HH

#include <string>

#include "absint/bounds.hh"

namespace jetsim::absint {

/** The planner's service-level objective (0 = unconstrained). */
struct Slo
{
    double max_latency_ms = 0; ///< mean pipeline latency ceiling
    double min_fps = 0;        ///< per-process throughput floor
};

enum class Verdict {
    Unknown,          ///< bounds do not decide the cell: simulate it
    ProvedInfeasible, ///< no schedule can meet the SLO
    ProvedFeasible,   ///< every schedule meets the SLO
};

/** One screened cell. */
struct ScreenResult
{
    Verdict verdict = Verdict::Unknown;
    std::string reason;      ///< which bound decided it, with numbers
    DeploymentBounds bounds; ///< the intervals behind the verdict
};

/** Screen one grid cell against @p slo without simulating. */
ScreenResult screen(const core::ExperimentSpec &spec, const Slo &slo);

const char *verdictName(Verdict v);

} // namespace jetsim::absint

#endif // JETSIM_ABSINT_PRESCREEN_HH
