#include "absint/interval.hh"

#include <cstdio>

namespace jetsim::absint {

std::string
Interval::str() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[%.3f, %.3f]", lo, hi);
    return buf;
}

} // namespace jetsim::absint
