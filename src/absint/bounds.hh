/**
 * @file
 * jetbound: sound static latency / throughput / memory / queue-depth
 * bounds for a deployment spec, derived by abstract interpretation of
 * the same cost and scheduling models the simulator executes.
 *
 * Every quantity is an Interval whose containment of the simulated
 * value is a *tested property* (tests/absint/soundness_test.cc runs
 * every zoo model x board x process count and asserts lo <= sim <=
 * hi). The bounds rest on explicit mechanisms, not tuning:
 *
 *  - Kernel bodies are inside [kJitterLo, kJitterHi] x the
 *    deterministic roofline body (clamped lognormal jitter), and the
 *    body is monotone in DVFS frequency, so evaluating the cost
 *    model at f=1 / f=f_min brackets every reachable duration.
 *  - CPU-side work (prep, launch, sync) uses Rng::lognormalBounded,
 *    whose draws stay inside mean x [1/kLognormalEnvelope,
 *    kLognormalEnvelope].
 *  - The OS scheduler's slice/min-granularity/cache-penalty rules
 *    bound a work item's wall time (see CpuModel::serviceHiMs).
 *  - The GPU's time-multiplexed arbitration rotates cyclically to
 *    the first runnable channel, so between two occupancies of one
 *    channel every other channel runs at most once, for at most
 *    quantum + one maximal kernel + a channel switch.
 *
 * Spatial sharing (the MPS ablation) deliberately has no bounds:
 * analyze() rejects such specs rather than emit unsound intervals.
 */

#ifndef JETSIM_ABSINT_BOUNDS_HH
#define JETSIM_ABSINT_BOUNDS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "absint/interval.hh"
#include "core/experiment.hh"

namespace jetsim::absint {

/** Static duration interval for one GPU kernel. */
struct KernelBound
{
    std::string name;
    int workload = 0;
    Interval ms; ///< occupancy incl. profiler intrusion in hi
};

/**
 * The scheduler constants the CPU-side bound is computed from, kept
 * on the result so the model-checker cross-check (adversarial
 * blocking) can be evaluated later for any max_ecs.
 */
struct CpuModel
{
    double timeslice_ms = 0;
    double ctx_switch_ms = 0;
    int big_cores = 0;
    int procs = 0; ///< competing enqueue threads (one per process)
    double prep_hi_ms = 0;   ///< envelope-clamped host prep
    double launch_hi_ms = 0; ///< envelope-clamped launch API call
    double sync_ms = 0;      ///< cudaStreamSynchronize CPU cost
    double spin_chunk_ms = 0;
    bool spin_wait = true;

    /**
     * Worst-case wall-clock to retire one exec() item of nominal
     * work @p w ms under FIFO run queues:
     *  - cache penalty inflates work to W' <= (4w + ts)/3 (each
     *    dispatch adds <= ts/4, each non-final dispatch retires
     *    >= ts of inflated work), or 1.25 w for single-slice items;
     *  - each dispatch may wait for ceil((P-1)/B)+1 occupancy turns
     *    of at most cs + 1.5 ts each (min-granularity yield), zero
     *    when threads do not outnumber big cores;
     *  - plus one context switch per dispatch.
     */
    double serviceHiMs(double w) const;

    /** Worst-case gap from becoming runnable to first dispatch. */
    double dispatchWaitHiMs() const;
};

/** Per-process bounds (one entry per deployed process). */
struct ProcBounds
{
    std::string name;
    int workload = 0;       ///< index into the mixed spec
    int kernels_per_ec = 0; ///< K: engine kernel count
    /** Static cap on resident kernels in this process's channel:
     * (1 + pre_enqueue) x K, checked vs GpuEngine::peakChannelDepth. */
    int queue_depth_hi = 0;
    /** Run-alone serial GPU time per EC (sum of kernel bounds). */
    Interval gpu_ec_ms;
    /** Pipeline span: enqueue-begin to GPU-done (paper latency). */
    Interval latency_ms;
    /** Completion-to-completion period (paper EC_i). */
    Interval period_ms;
    /** Per-process throughput over the measurement window. */
    Interval throughput_fps;
    /** Per-EC blocking B_l (GPU done -> CPU detection), upper. */
    double blocking_ms_hi = 0;
    /** Serialization allowance added for logically-coupled streams
     * (conflictingStreamPairs partners); zero for disjoint-buffer
     * deployments. */
    double conflict_stall_ms = 0;
};

/** Whole-deployment bounds. */
struct DeploymentBounds
{
    bool ok = false;
    std::string error; ///< why analysis refused (when !ok)

    std::string device;
    int processes = 0;
    int pre_enqueue = 1;
    double window_ms = 0; ///< nominal measurement window

    /** @name Memory (MiB)
     * @{ */
    double available_mib = 0;
    Interval mem_mib;          ///< liveness high-water interval
    double whole_sum_mib = 0;  ///< jetlint D001's whole-sum bound
    bool must_oom = false;     ///< lower bound alone exceeds budget
    bool may_oom = false;      ///< upper bound exceeds budget
    /** @} */

    /** Logically-coupled process-stream pairs (shared buffers per
     * lint::conflictingStreamPairs; sync edges ignored there). */
    int contending_pairs = 0;

    /** Aggregate throughput cap from GPU serialization: completed
     * ECs beyond the in-flight allowance each hold the GPU for at
     * least their run-alone time. */
    double total_throughput_hi_fps = 0;
    /** total / processes: a bound on the *mean* per-process rate
     * (individual processes may transiently exceed it). */
    double mean_throughput_hi_fps = 0;

    CpuModel cpu;
    double quantum_ms = 0;
    double switch_ms = 0;
    double d_max_hi_ms = 0; ///< heaviest single kernel bound

    std::vector<KernelBound> kernels;
    std::vector<ProcBounds> procs;
};

/** Analyze a heterogeneous deployment. Never runs the simulator. */
DeploymentBounds analyze(const core::MixedExperimentSpec &spec);

/** Analyze a homogeneous grid cell (wrapped into a mixed spec the
 * same way core::runExperiment wraps it). */
DeploymentBounds analyze(const core::ExperimentSpec &spec);

/**
 * Worst-case per-EC blocking for process @p proc when the CPU run
 * queue order is adversarial (jetmc's controlled scheduler may
 * dispatch any queued thread, not the FIFO head) in a closed
 * deployment of @p max_ecs ECs per process: the FIFO chain bound
 * plus every other process's total (cache-inflated) CPU work and
 * per-item context switches — an adversary can steal at most the
 * work that exists. jetmc's observed max_block_ms must stay below
 * this (tests/absint/soundness_test.cc).
 */
double adversarialBlockingHiMs(const DeploymentBounds &b, int proc,
                               std::uint64_t max_ecs);

} // namespace jetsim::absint

#endif // JETSIM_ABSINT_BOUNDS_HH
