#include "absint/prescreen.hh"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace jetsim::absint {

namespace {

std::string
fmt(const char *pattern, double a, double b)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), pattern, a, b);
    return buf;
}

} // namespace

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Unknown: return "unknown";
      case Verdict::ProvedInfeasible: return "proved-infeasible";
      case Verdict::ProvedFeasible: return "proved-feasible";
    }
    return "?";
}

ScreenResult
screen(const core::ExperimentSpec &spec, const Slo &slo)
{
    ScreenResult r;
    r.bounds = analyze(spec);
    const DeploymentBounds &b = r.bounds;
    if (!b.ok) {
        r.reason = "not analyzable: " + b.error;
        return r; // Unknown: let the simulator decide
    }

    // --- Infeasibility proofs (lower bounds beat the SLO) ----------
    if (b.must_oom) {
        r.verdict = Verdict::ProvedInfeasible;
        r.reason = fmt("memory lower bound %.1f MiB exceeds the "
                       "%.1f MiB budget: deployment must fail",
                       b.mem_mib.lo, b.available_mib);
        return r;
    }
    double lat_lo = std::numeric_limits<double>::max();
    double lat_hi = 0.0;
    double tput_lo_min = std::numeric_limits<double>::max();
    double tput_hi_avg = 0.0;
    for (const auto &p : b.procs) {
        lat_lo = std::min(lat_lo, p.latency_ms.lo);
        lat_hi = std::max(lat_hi, p.latency_ms.hi);
        tput_lo_min = std::min(tput_lo_min, p.throughput_fps.lo);
        tput_hi_avg += p.throughput_fps.hi;
    }
    tput_hi_avg /= static_cast<double>(b.procs.size());
    // The mean per-process rate is capped both by the mean of the
    // per-process upper bounds and by the aggregate GPU-serial cap.
    const double mean_fps_hi =
        std::min(tput_hi_avg, b.mean_throughput_hi_fps);

    if (slo.max_latency_ms > 0 && lat_lo > slo.max_latency_ms) {
        r.verdict = Verdict::ProvedInfeasible;
        r.reason = fmt("latency lower bound %.2f ms exceeds the "
                       "%.2f ms SLO in every schedule",
                       lat_lo, slo.max_latency_ms);
        return r;
    }
    if (slo.min_fps > 0 && mean_fps_hi < slo.min_fps) {
        r.verdict = Verdict::ProvedInfeasible;
        r.reason = fmt("throughput upper bound %.2f fps cannot reach "
                       "the %.2f fps floor in any schedule",
                       mean_fps_hi, slo.min_fps);
        return r;
    }

    // --- Feasibility proofs (upper bounds meet the SLO) ------------
    const bool lat_ok =
        slo.max_latency_ms <= 0 || lat_hi <= slo.max_latency_ms;
    const bool fps_ok =
        slo.min_fps <= 0 || tput_lo_min >= slo.min_fps;
    if (!b.may_oom && lat_ok && fps_ok) {
        r.verdict = Verdict::ProvedFeasible;
        r.reason = fmt("upper bounds meet the SLO (latency <= %.2f "
                       "ms, throughput >= %.2f fps) in every "
                       "schedule",
                       lat_hi, tput_lo_min);
        return r;
    }

    r.reason = "bounds do not decide the cell";
    return r;
}

} // namespace jetsim::absint
