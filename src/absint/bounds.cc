#include "absint/bounds.hh"

#include <algorithm>
#include <cmath>

#include "absint/memlive.hh"
#include "gpu/cost_model.hh"
#include "lint/hazard_lint.hh"
#include "models/zoo.hh"
#include "prof/nsight.hh"
#include "sim/rng.hh"
#include "soc/device_spec.hh"
#include "trt/builder.hh"
#include "workload/inference_process.hh"

namespace jetsim::absint {

namespace {

constexpr double kNsToMs = 1e-6;

/** Per-workload-group engine facts shared by its processes. */
struct WorkloadInfo
{
    int kernels = 0;
    int batch = 1;
    double e_lo_ms = 0; ///< sum of kernel lower bounds
    double e_hi_ms = 0; ///< sum of kernel upper bounds
    sim::Bytes engine_bytes = 0;
};

} // namespace

double
CpuModel::dispatchWaitHiMs() const
{
    if (procs <= big_cores || big_cores <= 0)
        return 0.0; // an idle core always exists: dispatch immediate
    // FIFO run queue: at most P-1 threads ahead, B cores serving,
    // each occupancy turn bounded by one context switch plus 1.5
    // timeslices (the min-granularity yield fires at the first slice
    // end past ts/2, and a slice is at most ts).
    const double turns =
        std::ceil(static_cast<double>(procs - 1) /
                  static_cast<double>(big_cores)) +
        1.0;
    return turns * (ctx_switch_ms + 1.5 * timeslice_ms);
}

double
CpuModel::serviceHiMs(double w) const
{
    const double ts = timeslice_ms;
    const double cs = ctx_switch_ms;
    double inflated;  // work incl. worst-case cache penalties
    double dispatches;
    if (1.25 * w <= ts) {
        // Single dispatch: the one cold-start penalty is bounded by
        // the item's own size (factor <= 0.25), and the whole item
        // fits one slice.
        inflated = 1.25 * w;
        dispatches = 1.0;
    } else {
        // Each dispatch adds <= ts/4 penalty and every non-final
        // dispatch retires >= ts of inflated work, so
        // W' <= w + (W'/ts + 1) * ts/4  =>  W' <= (4w + ts)/3.
        inflated = (4.0 * w + ts) / 3.0;
        dispatches = std::floor(inflated / ts) + 1.0;
    }
    return inflated + dispatches * (dispatchWaitHiMs() + cs);
}

DeploymentBounds
analyze(const core::MixedExperimentSpec &spec)
{
    DeploymentBounds b;
    b.device = spec.device;
    b.pre_enqueue = spec.pre_enqueue;
    b.window_ms = sim::toMsec(spec.duration);

    const auto dev = soc::findDevice(spec.device);
    if (!dev) {
        b.error = "unknown device '" + spec.device + "'";
        return b;
    }
    if (spec.spatial_sharing) {
        b.error = "spatial sharing (MPS ablation) is out of the "
                  "abstract domain: bounds model time-multiplexed "
                  "channel arbitration only";
        return b;
    }
    if (spec.workloads.empty()) {
        b.error = "no workloads";
        return b;
    }
    const auto &known = models::allModelNames();
    for (const auto &w : spec.workloads) {
        if (std::find(known.begin(), known.end(), w.model) ==
            known.end()) {
            b.error = "unknown model '" + w.model + "'";
            return b;
        }
        if (w.processes < 1 || w.batch < 1) {
            b.error = "workload '" + w.model +
                      "' needs processes >= 1 and batch >= 1";
            return b;
        }
    }
    if (spec.pre_enqueue < 0 || spec.duration <= 0) {
        b.error = "pre_enqueue must be >= 0 and duration positive";
        return b;
    }

    const int nproc = spec.totalProcesses();
    b.processes = nproc;

    // --- Per-kernel duration intervals --------------------------------
    // Deterministic roofline body at f=1 (largest frequency => least
    // work time) and at the lowest DVFS point, bracketed by the
    // jitter clamp; +-1 ns absorbs the Tick truncations. The deep
    // phase's per-kernel tracer gap extends occupancy on the hi side.
    const double f_lo =
        spec.dvfs ? dev->gpu.min_freq_ghz / dev->gpu.max_freq_ghz
                  : 1.0;
    const bool deep = spec.phase == core::Phase::Deep;
    const double extra_ms =
        deep ? sim::toMsec(prof::NsightTracer::kPerKernelOverhead)
             : 0.0;
    const double lof =
        deep ? prof::NsightTracer::kLaunchOverheadFactor : 1.0;

    const gpu::KernelCostModel cm(*dev);
    constexpr auto kOv =
        static_cast<double>(gpu::KernelCostModel::kKernelOverhead);

    std::vector<WorkloadInfo> infos;
    for (std::size_t wi = 0; wi < spec.workloads.size(); ++wi) {
        const auto &w = spec.workloads[wi];
        const graph::Network net = models::modelByName(w.model);
        const trt::Engine eng = trt::Builder(*dev).build(
            net, trt::BuilderConfig{w.precision, w.batch, true});
        WorkloadInfo info;
        info.kernels = static_cast<int>(eng.kernels().size());
        info.batch = w.batch;
        info.engine_bytes = eng.deviceBytes();
        for (const auto &k : eng.kernels()) {
            const auto t1 = cm.timing(k, 1.0, nullptr);
            const auto tmin = cm.timing(k, f_lo, nullptr);
            const double body1 =
                static_cast<double>(t1.duration) - kOv;
            const double bodymin =
                static_cast<double>(tmin.duration) - kOv;
            const double lo_ns =
                kOv + std::floor(gpu::KernelCostModel::kJitterLo *
                                 body1);
            const double hi_ns =
                kOv +
                std::ceil(gpu::KernelCostModel::kJitterHi *
                          (bodymin + 1.0)) +
                1.0;
            KernelBound kb;
            kb.name = w.model + "/" + k.name;
            kb.workload = static_cast<int>(wi);
            kb.ms = {lo_ns * kNsToMs, hi_ns * kNsToMs + extra_ms};
            info.e_lo_ms += kb.ms.lo;
            info.e_hi_ms += kb.ms.hi;
            b.d_max_hi_ms = std::max(b.d_max_hi_ms, kb.ms.hi);
            b.kernels.push_back(std::move(kb));
        }
        if (info.kernels == 0 || info.e_lo_ms <= 0.0) {
            b.error = "model '" + w.model +
                      "' produced an empty engine";
            return b;
        }
        infos.push_back(info);
    }

    // --- CPU service model --------------------------------------------
    const auto &rt = dev->runtime;
    const workload::ProcessConfig defaults;
    b.cpu.timeslice_ms = sim::toMsec(rt.timeslice);
    b.cpu.ctx_switch_ms = sim::toMsec(rt.context_switch);
    b.cpu.big_cores = dev->bigCores();
    b.cpu.procs = nproc;
    b.cpu.prep_hi_ms =
        sim::toMsec(defaults.prep_cost) * sim::kLognormalEnvelope;
    b.cpu.launch_hi_ms = sim::toMsec(rt.launch_cpu_cost) * lof *
                         sim::kLognormalEnvelope;
    b.cpu.sync_ms = sim::toMsec(rt.sync_cpu_cost);
    b.cpu.spin_chunk_ms = sim::toMsec(defaults.spin_chunk);
    b.cpu.spin_wait = defaults.spin_wait;

    // --- GPU arbitration ----------------------------------------------
    // Channel rotation is cyclic-first-runnable: between two
    // occupancies of one channel every other channel runs at most
    // once, each for at most quantum + one maximal kernel (the
    // quantum check happens when the *next* kernel is picked) plus a
    // channel switch.
    b.quantum_ms = sim::toMsec(rt.gpu_quantum);
    b.switch_ms = sim::toMsec(rt.channel_switch);
    const double gap_hi =
        nproc > 1 ? static_cast<double>(nproc - 1) *
                            (b.switch_ms + b.quantum_ms +
                             b.d_max_hi_ms) +
                        b.switch_ms
                  : 0.0;

    // --- Memory high-water via buffer liveness ------------------------
    // The symbolic allocation program: a deploy stream pins every
    // process's runtime + engine buffers (program order), then each
    // process stream runs inference on its own buffers after the
    // deploy event — so all allocations must coexist, and the
    // liveness bound collapses to the exact whole-sum, matching the
    // simulator's sequential deploy.
    lint::StreamProgram prog;
    const int deploy_s = prog.stream("deploy");
    std::vector<int> proc_stream;
    std::vector<std::string> proc_name;
    std::vector<int> proc_workload;
    for (std::size_t wi = 0; wi < spec.workloads.size(); ++wi) {
        const auto &w = spec.workloads[wi];
        for (int i = 0; i < w.processes; ++i) {
            const std::string nm = w.model + "/" +
                                   soc::name(w.precision) + "." +
                                   std::to_string(i);
            proc_stream.push_back(prog.stream(nm));
            proc_name.push_back(nm);
            proc_workload.push_back(static_cast<int>(wi));
        }
    }
    const int ev = prog.event("deployed");
    std::vector<std::pair<int, int>> proc_bufs;
    for (std::size_t pi = 0; pi < proc_stream.size(); ++pi) {
        const int rt_b = prog.buffer(
            proc_name[pi] + ".rt",
            dev->memory.process_runtime_overhead);
        const int eng_b = prog.buffer(
            proc_name[pi] + ".eng",
            infos[static_cast<std::size_t>(proc_workload[pi])]
                .engine_bytes);
        prog.launch(deploy_s, "alloc." + proc_name[pi], {},
                    {rt_b, eng_b});
        proc_bufs.emplace_back(rt_b, eng_b);
    }
    prog.record(deploy_s, ev);
    for (std::size_t pi = 0; pi < proc_stream.size(); ++pi) {
        prog.wait(proc_stream[pi], ev);
        prog.launch(proc_stream[pi], "infer." + proc_name[pi],
                    {proc_bufs[pi].first},
                    {proc_bufs[pi].second});
    }

    const MemBounds mem = memHighWater(prog);
    b.available_mib = sim::toMiB(dev->availableMemory());
    b.mem_mib = {sim::toMiB(mem.peak_lo), sim::toMiB(mem.peak_hi)};
    b.whole_sum_mib = sim::toMiB(mem.whole_sum);
    b.must_oom = mem.peak_lo > dev->availableMemory();
    b.may_oom = mem.peak_hi > dev->availableMemory();

    // Logical coupling between process streams (conflicting pairs
    // excluding the deploy stream): such partners may serialize on
    // shared data, so their drain is added to the hi side below.
    // The default per-process-buffer program has none.
    std::vector<std::vector<int>> partners(proc_stream.size());
    for (const auto &pr : lint::conflictingStreamPairs(prog)) {
        if (pr.first == deploy_s || pr.second == deploy_s)
            continue;
        const int a = pr.first - 1;  // stream ids follow deploy's 0
        const int p2 = pr.second - 1;
        partners[static_cast<std::size_t>(a)].push_back(p2);
        partners[static_cast<std::size_t>(p2)].push_back(a);
        ++b.contending_pairs;
    }

    // --- Per-process intervals ----------------------------------------
    const double in_flight =
        static_cast<double>(1 + spec.pre_enqueue);
    const double w_ms = b.window_ms;
    double best_rate = 0.0;
    for (std::size_t pi = 0; pi < proc_stream.size(); ++pi) {
        const auto &info =
            infos[static_cast<std::size_t>(proc_workload[pi])];
        ProcBounds pb;
        pb.name = proc_name[pi];
        pb.workload = proc_workload[pi];
        pb.kernels_per_ec = info.kernels;
        pb.queue_depth_hi =
            (1 + spec.pre_enqueue) * info.kernels;
        pb.gpu_ec_ms = {info.e_lo_ms, info.e_hi_ms};

        const double kd = static_cast<double>(info.kernels);
        const double detect =
            b.cpu.spin_wait ? b.cpu.serviceHiMs(b.cpu.spin_chunk_ms)
                            : b.cpu.serviceHiMs(b.cpu.sync_ms);
        const double sync_hi = b.cpu.serviceHiMs(b.cpu.sync_ms);
        const double prep_hi = b.cpu.serviceHiMs(b.cpu.prep_hi_ms);
        const double launch_total =
            kd * b.cpu.serviceHiMs(b.cpu.launch_hi_ms);

        for (const int q : partners[pi])
            pb.conflict_stall_ms +=
                in_flight *
                infos[static_cast<std::size_t>(proc_workload
                          [static_cast<std::size_t>(q)])]
                    .e_hi_ms;

        // Pipeline span: our K launches (CPU), then the channel
        // drains at most (1+pre) ECs' kernels, each preceded by a
        // full rotation gap.
        const double drain_hi = in_flight * info.e_hi_ms +
                                in_flight * kd * gap_hi;
        const double span_hi =
            launch_total + drain_hi + pb.conflict_stall_ms;
        pb.latency_ms = {info.e_lo_ms, span_hi};

        // Completion period: detection + sync + prep + the span
        // chain on the hi side; on the lo side consecutive
        // completions are separated by one EC's serial kernels
        // (channel FIFO: EC i+1's kernels all run after EC i's
        // last one finishes).
        const double period_hi =
            detect + sync_hi + prep_hi + span_hi;
        pb.period_ms = {info.e_lo_ms, period_hi};

        // B_l: worst case is a completion landing just after the
        // previous EC's detection began — the chain re-runs detect +
        // sync twice around one prep + K launches.
        pb.blocking_ms_hi =
            2.0 * (detect + sync_hi) + prep_hi + launch_total;

        // Throughput: at most one EC per E_lo of exclusive GPU time
        // plus the in-flight allowance at the window edge; at least
        // one EC per period_hi minus two edge ECs. The measured
        // window is >= the nominal one (the runner extends slow
        // cells), which only shrinks the edge terms.
        const double batch = static_cast<double>(info.batch);
        const double tput_hi = 1000.0 * batch / info.e_lo_ms +
                               1000.0 * batch * in_flight / w_ms;
        const double tput_lo = std::max(
            0.0, 1000.0 * batch / period_hi -
                     2000.0 * batch / w_ms);
        pb.throughput_fps = {tput_lo, tput_hi};

        best_rate =
            std::max(best_rate, 1000.0 * batch / info.e_lo_ms);
        b.total_throughput_hi_fps +=
            1000.0 * batch * in_flight / w_ms;
        b.procs.push_back(std::move(pb));
    }
    // Aggregate cap: every completed EC beyond the in-flight
    // allowance holds the (serial) GPU for at least its E_lo, so
    // the sum over processes of (n_p - in_flight) * E_lo_p fits in
    // the window; the best images-per-GPU-second ratio bounds the
    // total.
    b.total_throughput_hi_fps += best_rate;
    b.mean_throughput_hi_fps =
        b.total_throughput_hi_fps / static_cast<double>(nproc);

    b.ok = true;
    return b;
}

DeploymentBounds
analyze(const core::ExperimentSpec &spec)
{
    core::MixedExperimentSpec mixed;
    mixed.device = spec.device;
    mixed.workloads.push_back(core::WorkloadSpec{
        spec.model, spec.precision, spec.batch, spec.processes});
    mixed.phase = spec.phase;
    mixed.warmup = spec.warmup;
    mixed.duration = spec.duration;
    mixed.pre_enqueue = spec.pre_enqueue;
    mixed.dvfs = spec.dvfs;
    mixed.biglittle = spec.biglittle;
    mixed.spatial_sharing = spec.spatial_sharing;
    mixed.seed = spec.seed;
    return analyze(mixed);
}

double
adversarialBlockingHiMs(const DeploymentBounds &b, int proc,
                        std::uint64_t max_ecs)
{
    const CpuModel &cpu = b.cpu;
    const auto &me = b.procs[static_cast<std::size_t>(proc)];
    // The model checker's deployments sync in blocking mode, so
    // detection is a sync item, not a spin chunk.
    const double sync_hi = cpu.serviceHiMs(cpu.sync_ms);
    const double base =
        2.0 * (sync_hi + sync_hi) + cpu.serviceHiMs(cpu.prep_hi_ms) +
        static_cast<double>(me.kernels_per_ec) *
            cpu.serviceHiMs(cpu.launch_hi_ms);

    // Whenever this process waits beyond its own chain, every big
    // core is busy with another process's (cache-inflated) CPU work
    // or a context switch — and a closed workload only has so much
    // of it: per EC one prep, K launches and at most three sync
    // items, for max_ecs plus the in-flight tail.
    const double ts = cpu.timeslice_ms;
    double theft = 0.0;
    for (std::size_t q = 0; q < b.procs.size(); ++q) {
        if (static_cast<int>(q) == proc)
            continue;
        const double kq =
            static_cast<double>(b.procs[q].kernels_per_ec);
        const double ecs = static_cast<double>(max_ecs) + 1.0 +
                           static_cast<double>(b.pre_enqueue);
        const double items = ecs * (kq + 4.0);
        const double work =
            ecs *
            ((4.0 * (cpu.prep_hi_ms + kq * cpu.launch_hi_ms +
                     3.0 * cpu.sync_ms) +
              (kq + 4.0) * ts) /
             3.0);
        theft += work + items * cpu.ctx_switch_ms;
    }
    return base + theft;
}

} // namespace jetsim::absint
