#include "absint/memlive.hh"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace jetsim::absint {

namespace {

using Op = lint::StreamProgram::Op;

/** Exact max-weight clique over <= kExactCliqueLimit vertices:
 * branch and bound on a candidate bitmask with the remaining-weight
 * prune. 2^24 worst case never materialises on conflict graphs this
 * small, and the search is exact, which keeps both bounds tight. */
class CliqueSolver
{
  public:
    CliqueSolver(const std::vector<sim::Bytes> &w,
                 const std::vector<std::uint32_t> &adj)
        : w_(w), adj_(adj)
    {
    }

    sim::Bytes
    solve()
    {
        best_ = 0;
        const auto all =
            w_.size() == 32
                ? ~std::uint32_t{0}
                : ((std::uint32_t{1} << w_.size()) - 1);
        expand(all, 0);
        return best_;
    }

  private:
    void
    expand(std::uint32_t cand, sim::Bytes cur)
    {
        if (cur > best_)
            best_ = cur;
        if (!cand)
            return;
        sim::Bytes rest = 0;
        for (std::uint32_t m = cand; m; m &= m - 1)
            rest += w_[static_cast<std::size_t>(
                __builtin_ctz(m))];
        if (cur + rest <= best_)
            return; // cannot beat the incumbent
        const int v = __builtin_ctz(cand);
        const auto bit = std::uint32_t{1} << v;
        // Include v: candidates shrink to v's neighbours.
        expand(cand & adj_[static_cast<std::size_t>(v)] & ~bit,
               cur + w_[static_cast<std::size_t>(v)]);
        // Exclude v.
        expand(cand & ~bit, cur);
    }

    const std::vector<sim::Bytes> &w_;
    const std::vector<std::uint32_t> &adj_;
    sim::Bytes best_ = 0;
};

/** Greedy clique (heaviest-first) — sound lower-bound fallback when
 * the graph is too large for the exact search. */
sim::Bytes
greedyClique(const std::vector<sim::Bytes> &w,
             const std::vector<std::vector<bool>> &adj)
{
    std::vector<int> order(w.size());
    for (std::size_t i = 0; i < w.size(); ++i)
        order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return w[static_cast<std::size_t>(a)] >
               w[static_cast<std::size_t>(b)];
    });
    std::vector<int> clique;
    sim::Bytes total = 0;
    for (const int v : order) {
        bool ok = true;
        for (const int u : clique)
            ok &= adj[static_cast<std::size_t>(v)]
                     [static_cast<std::size_t>(u)];
        if (ok) {
            clique.push_back(v);
            total += w[static_cast<std::size_t>(v)];
        }
    }
    return total;
}

} // namespace

MemBounds
memHighWater(const lint::StreamProgram &p)
{
    MemBounds out;
    for (int b = 0; b < p.numBuffers(); ++b)
        out.whole_sum += p.bufferBytes(b);

    const auto &ops = p.ops();
    const int n = static_cast<int>(ops.size());
    const int ns = p.numStreams();

    // --- Happens-before edges, exactly as lintHazards builds them:
    // program order per stream plus record->wait (first record wins;
    // same-stream record-before-wait is already program order).
    std::vector<int> record_of;
    for (int i = 0; i < n; ++i) {
        const Op &op = ops[static_cast<std::size_t>(i)];
        if (op.kind != Op::Kind::Record)
            continue;
        if (op.event >= static_cast<int>(record_of.size()))
            record_of.resize(static_cast<std::size_t>(op.event) + 1,
                             -1);
        int &slot = record_of[static_cast<std::size_t>(op.event)];
        if (slot < 0)
            slot = i;
    }
    std::vector<std::vector<int>> succs(static_cast<std::size_t>(n));
    std::vector<int> indeg(static_cast<std::size_t>(n), 0);
    auto addEdge = [&](int from, int to) {
        succs[static_cast<std::size_t>(from)].push_back(to);
        ++indeg[static_cast<std::size_t>(to)];
    };
    std::vector<int> prev_in_stream(static_cast<std::size_t>(ns), -1);
    for (int i = 0; i < n; ++i) {
        const Op &op = ops[static_cast<std::size_t>(i)];
        int &prev =
            prev_in_stream[static_cast<std::size_t>(op.stream)];
        if (prev >= 0)
            addEdge(prev, i);
        prev = i;
        if (op.kind == Op::Kind::Wait) {
            const int rec =
                op.event < static_cast<int>(record_of.size())
                    ? record_of[static_cast<std::size_t>(op.event)]
                    : -1;
            if (rec >= 0 &&
                (ops[static_cast<std::size_t>(rec)].stream !=
                     op.stream ||
                 rec > i))
                addEdge(rec, i);
        }
    }

    // --- Topological order (Kahn). A cycle means deadlock (H003):
    // report the conservative envelope and let jetlint flag it.
    std::vector<int> topo;
    topo.reserve(static_cast<std::size_t>(n));
    {
        std::vector<int> q;
        std::vector<int> deg = indeg;
        for (int i = 0; i < n; ++i)
            if (deg[static_cast<std::size_t>(i)] == 0)
                q.push_back(i);
        while (!q.empty()) {
            const int i = q.back();
            q.pop_back();
            topo.push_back(i);
            for (const int s : succs[static_cast<std::size_t>(i)])
                if (--deg[static_cast<std::size_t>(s)] == 0)
                    q.push_back(s);
        }
    }
    if (static_cast<int>(topo.size()) != n) {
        out.cyclic = true;
        out.exact_hi = false;
        out.peak_lo = 0; // nothing provably executes
        out.peak_hi = out.whole_sum;
        return out;
    }

    // --- Transitive descendants as op bitsets (reverse topo order).
    const std::size_t words =
        (static_cast<std::size_t>(n) + 63) / 64;
    std::vector<std::vector<std::uint64_t>> desc(
        static_cast<std::size_t>(n),
        std::vector<std::uint64_t>(words, 0));
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const int i = *it;
        auto &di = desc[static_cast<std::size_t>(i)];
        for (const int s : succs[static_cast<std::size_t>(i)]) {
            di[static_cast<std::size_t>(s) / 64] |=
                std::uint64_t{1} << (static_cast<std::size_t>(s) % 64);
            const auto &ds = desc[static_cast<std::size_t>(s)];
            for (std::size_t w = 0; w < words; ++w)
                di[w] |= ds[w];
        }
    }
    auto hb = [&](int a, int b) {
        return (desc[static_cast<std::size_t>(a)]
                    [static_cast<std::size_t>(b) / 64] >>
                (static_cast<std::size_t>(b) % 64)) &
               1;
    };

    // --- Per-buffer access sets (launches only; a never-accessed
    // buffer is never allocated and drops out of both cliques).
    std::vector<std::vector<int>> acc(
        static_cast<std::size_t>(p.numBuffers()));
    for (int i = 0; i < n; ++i) {
        const Op &op = ops[static_cast<std::size_t>(i)];
        if (op.kind != Op::Kind::Launch)
            continue;
        for (const int b : op.reads)
            acc[static_cast<std::size_t>(b)].push_back(i);
        for (const int b : op.writes)
            acc[static_cast<std::size_t>(b)].push_back(i);
    }

    std::vector<int> cand; // accessed buffers with nonzero weight
    for (int b = 0; b < p.numBuffers(); ++b)
        if (!acc[static_cast<std::size_t>(b)].empty() &&
            p.bufferBytes(b) > 0)
            cand.push_back(b);
    const int m = static_cast<int>(cand.size());
    if (m == 0)
        return out; // peaks stay 0

    auto allBefore = [&](int x, int y) {
        for (const int a : acc[static_cast<std::size_t>(x)])
            for (const int b : acc[static_cast<std::size_t>(y)])
                if (!hb(a, b))
                    return false;
        return true;
    };
    auto someBefore = [&](int x, int y) {
        for (const int a : acc[static_cast<std::size_t>(x)])
            for (const int b : acc[static_cast<std::size_t>(y)])
                if (hb(a, b))
                    return true;
        return false;
    };
    auto sharesOp = [&](int x, int y) {
        for (const int a : acc[static_cast<std::size_t>(x)])
            for (const int b : acc[static_cast<std::size_t>(y)])
                if (a == b)
                    return true;
        return false;
    };

    std::vector<sim::Bytes> w(static_cast<std::size_t>(m));
    std::vector<std::vector<bool>> may(
        static_cast<std::size_t>(m),
        std::vector<bool>(static_cast<std::size_t>(m), false));
    std::vector<std::vector<bool>> must = may;
    for (int i = 0; i < m; ++i)
        w[static_cast<std::size_t>(i)] =
            p.bufferBytes(cand[static_cast<std::size_t>(i)]);
    for (int i = 0; i < m; ++i) {
        for (int j = i + 1; j < m; ++j) {
            const int x = cand[static_cast<std::size_t>(i)];
            const int y = cand[static_cast<std::size_t>(j)];
            const bool disjoint = allBefore(x, y) || allBefore(y, x);
            const bool forced =
                sharesOp(x, y) ||
                (someBefore(x, y) && someBefore(y, x));
            may[static_cast<std::size_t>(i)]
               [static_cast<std::size_t>(j)] = !disjoint;
            may[static_cast<std::size_t>(j)]
               [static_cast<std::size_t>(i)] = !disjoint;
            must[static_cast<std::size_t>(i)]
                [static_cast<std::size_t>(j)] = forced;
            must[static_cast<std::size_t>(j)]
                [static_cast<std::size_t>(i)] = forced;
        }
    }

    if (m <= kExactCliqueLimit) {
        std::vector<std::uint32_t> may_adj(
            static_cast<std::size_t>(m), 0);
        std::vector<std::uint32_t> must_adj = may_adj;
        for (int i = 0; i < m; ++i)
            for (int j = 0; j < m; ++j) {
                if (may[static_cast<std::size_t>(i)]
                       [static_cast<std::size_t>(j)])
                    may_adj[static_cast<std::size_t>(i)] |=
                        std::uint32_t{1} << j;
                if (must[static_cast<std::size_t>(i)]
                        [static_cast<std::size_t>(j)])
                    must_adj[static_cast<std::size_t>(i)] |=
                        std::uint32_t{1} << j;
            }
        out.peak_hi = CliqueSolver(w, may_adj).solve();
        out.peak_lo = CliqueSolver(w, must_adj).solve();
    } else {
        out.exact_hi = false;
        out.peak_hi = out.whole_sum;
        out.peak_lo = greedyClique(w, must);
    }
    return out;
}

} // namespace jetsim::absint
