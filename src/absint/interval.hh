/**
 * @file
 * Interval domain for the static bound analyzer (jetbound).
 *
 * An Interval [lo, hi] abstracts a set of reachable concrete values:
 * every value the simulator can produce for the bounded quantity lies
 * inside it. Soundness is the only contract — the analyses in this
 * directory derive lo/hi from explicit mechanisms in the simulator
 * (jitter envelopes, arbitration rotation, scheduler granularity) and
 * the harness in tests/absint re-checks the containment property
 * against live runs on every zoo model.
 */

#ifndef JETSIM_ABSINT_INTERVAL_HH
#define JETSIM_ABSINT_INTERVAL_HH

#include <algorithm>
#include <string>

namespace jetsim::absint {

/** A closed interval of doubles; the bottom element is [0, 0]. */
struct Interval
{
    double lo = 0.0;
    double hi = 0.0;

    /** Membership with a symmetric tolerance (float accumulation). */
    bool
    contains(double v, double eps = 1e-9) const
    {
        return v >= lo - eps && v <= hi + eps;
    }

    bool valid() const { return lo <= hi; }
    double width() const { return hi - lo; }

    /** Width relative to the midpoint — the tightness figure the
     * jetbound CLI reports per quantity (0 = exact, 2 = vacuous
     * [0, 2x] style bound). */
    double
    relWidth() const
    {
        const double mid = 0.5 * (lo + hi);
        return mid > 0.0 ? width() / mid : 0.0;
    }

    Interval
    operator+(const Interval &o) const
    {
        return {lo + o.lo, hi + o.hi};
    }

    Interval &
    operator+=(const Interval &o)
    {
        lo += o.lo;
        hi += o.hi;
        return *this;
    }

    /** Scale by a non-negative constant. */
    Interval
    scaled(double k) const
    {
        return {lo * k, hi * k};
    }

    /** Smallest interval containing both (join). */
    Interval
    hull(const Interval &o) const
    {
        return {std::min(lo, o.lo), std::max(hi, o.hi)};
    }

    /** `[lo, hi]` with %.3f precision, for reports. */
    std::string str() const;
};

} // namespace jetsim::absint

#endif // JETSIM_ABSINT_INTERVAL_HH
