/**
 * @file
 * Extension models: ResNet-18 and MobileNetV2 (torchvision
 * definitions). Not part of the paper's sweep, but useful for
 * mixed-tenancy scenarios and for exercising basic residual blocks
 * and depthwise convolutions in the builder and cost model.
 */

#include "models/zoo.hh"

#include <string>

namespace jetsim::models {

using graph::Network;
using graph::OpKind;

namespace {

/** ResNet BasicBlock: two 3x3 convs with a residual. */
int
basicBlock(Network &net, const std::string &name, int input, int out,
           int stride)
{
    int x = net.addConv(name + ".conv1", input, out, 3, stride, 1);
    x = net.addBatchNorm(name + ".bn1", x);
    x = net.addActivation(name + ".relu1", x, OpKind::Relu);
    x = net.addConv(name + ".conv2", x, out, 3, 1, 1);
    x = net.addBatchNorm(name + ".bn2", x);

    int identity = input;
    if (net.layer(input).out.c != out || stride != 1) {
        identity = net.addConv(name + ".downsample.0", input, out, 1,
                               stride, 0);
        identity = net.addBatchNorm(name + ".downsample.1", identity);
    }
    x = net.addAdd(name + ".add", x, identity);
    return net.addActivation(name + ".relu2", x, OpKind::Relu);
}

/**
 * MobileNetV2 inverted residual: 1x1 expand (skipped when the
 * expansion factor is 1), 3x3 depthwise, 1x1 linear projection,
 * residual when the shapes allow.
 */
int
invertedResidual(Network &net, const std::string &name, int input,
                 int expand, int out, int stride)
{
    const int in_c = net.layer(input).out.c;
    const int hidden = in_c * expand;

    int x = input;
    if (expand != 1) {
        x = net.addConv(name + ".expand", x, hidden, 1, 1, 0);
        x = net.addBatchNorm(name + ".expand.bn", x);
        x = net.addActivation(name + ".expand.act", x, OpKind::Relu);
    }

    x = net.addConv(name + ".dw", x, hidden, 3, stride, 1, 1, hidden);
    x = net.addBatchNorm(name + ".dw.bn", x);
    x = net.addActivation(name + ".dw.act", x, OpKind::Relu);

    x = net.addConv(name + ".project", x, out, 1, 1, 0);
    x = net.addBatchNorm(name + ".project.bn", x);

    if (stride == 1 && in_c == out)
        x = net.addAdd(name + ".add", x, input);
    return x;
}

} // namespace

Network
resnet18()
{
    Network net("resnet18", graph::Shape{3, 224, 224});
    int x = net.addConv("conv1", net.inputId(), 64, 7, 2, 3);
    x = net.addBatchNorm("bn1", x);
    x = net.addActivation("relu", x, OpKind::Relu);
    x = net.addPool("maxpool", x, OpKind::MaxPool, 3, 2, 1);

    const int channels[4] = {64, 128, 256, 512};
    for (int stage = 0; stage < 4; ++stage) {
        const int stride = stage == 0 ? 1 : 2;
        const std::string base = "layer" + std::to_string(stage + 1);
        x = basicBlock(net, base + ".0", x, channels[stage], stride);
        x = basicBlock(net, base + ".1", x, channels[stage], 1);
    }

    x = net.addGlobalAvgPool("avgpool", x);
    x = net.addLinear("fc", x, 1000);
    net.setOutput(x);
    net.validate();
    return net;
}

Network
mobilenetV2()
{
    Network net("mobilenet_v2", graph::Shape{3, 224, 224});
    int x = net.addConv("features.0", net.inputId(), 32, 3, 2, 1);
    x = net.addBatchNorm("features.0.bn", x);
    x = net.addActivation("features.0.act", x, OpKind::Relu);

    // (expansion, out channels, repeats, first stride)
    const int cfg[7][4] = {
        {1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2},
        {6, 64, 4, 2},  {6, 96, 3, 1},  {6, 160, 3, 2},
        {6, 320, 1, 1},
    };

    int block = 1;
    for (const auto &c : cfg) {
        for (int i = 0; i < c[2]; ++i) {
            const int stride = i == 0 ? c[3] : 1;
            x = invertedResidual(net,
                                 "features." + std::to_string(block++),
                                 x, c[0], c[1], stride);
        }
    }

    x = net.addConv("features.18", x, 1280, 1, 1, 0);
    x = net.addBatchNorm("features.18.bn", x);
    x = net.addActivation("features.18.act", x, OpKind::Relu);
    x = net.addGlobalAvgPool("avgpool", x);
    x = net.addLinear("classifier.1", x, 1000);
    net.setOutput(x);
    net.validate();
    return net;
}

} // namespace jetsim::models
