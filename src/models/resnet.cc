/**
 * @file
 * ResNet-50 and FCN_ResNet50 graph builders.
 *
 * Follows the torchvision definitions: Bottleneck blocks with
 * expansion 4; FCN uses replace_stride_with_dilation on layer3/4
 * (output stride 8) plus the FCN classification head and the
 * auxiliary head that ships with the pretrained weights.
 */

#include "models/zoo.hh"

#include <string>

namespace jetsim::models {

using graph::Network;
using graph::OpKind;

namespace {

/**
 * A torchvision Bottleneck: 1x1 reduce, 3x3 (stride/dilation), 1x1
 * expand, residual add, final ReLU. @return the block output id.
 */
int
bottleneck(Network &net, const std::string &name, int input, int mid,
           int out, int stride, int dilation)
{
    int x = net.addConv(name + ".conv1", input, mid, 1, 1, 0);
    x = net.addBatchNorm(name + ".bn1", x);
    x = net.addActivation(name + ".relu1", x, OpKind::Relu);

    x = net.addConv(name + ".conv2", x, mid, 3, stride, dilation,
                    dilation);
    x = net.addBatchNorm(name + ".bn2", x);
    x = net.addActivation(name + ".relu2", x, OpKind::Relu);

    x = net.addConv(name + ".conv3", x, out, 1, 1, 0);
    x = net.addBatchNorm(name + ".bn3", x);

    int identity = input;
    const bool reshape = net.layer(input).out.c != out || stride != 1;
    if (reshape) {
        identity = net.addConv(name + ".downsample.0", input, out, 1,
                               stride, 0);
        identity = net.addBatchNorm(name + ".downsample.1", identity);
    }

    x = net.addAdd(name + ".add", x, identity);
    return net.addActivation(name + ".relu3", x, OpKind::Relu);
}

/**
 * One ResNet stage of @p blocks bottlenecks. The first block carries
 * the stride (or, in the dilated FCN variant, converts it into extra
 * dilation as torchvision's replace_stride_with_dilation does).
 */
int
stage(Network &net, const std::string &name, int input, int mid,
      int out, int blocks, int stride, int dilation)
{
    int x = bottleneck(net, name + ".0", input, mid, out, stride,
                       dilation);
    for (int i = 1; i < blocks; ++i)
        x = bottleneck(net, name + "." + std::to_string(i), x, mid,
                       out, 1, dilation);
    return x;
}

/** Shared ResNet-50 trunk; returns {layer3 out, layer4 out}. */
struct Trunk
{
    int c4; ///< layer3 output (1024 ch)
    int c5; ///< layer4 output (2048 ch)
};

Trunk
resnetTrunk(Network &net, bool dilated)
{
    int x = net.addConv("conv1", net.inputId(), 64, 7, 2, 3);
    x = net.addBatchNorm("bn1", x);
    x = net.addActivation("relu", x, OpKind::Relu);
    x = net.addPool("maxpool", x, OpKind::MaxPool, 3, 2, 1);

    x = stage(net, "layer1", x, 64, 256, 3, 1, 1);
    x = stage(net, "layer2", x, 128, 512, 4, 2, 1);

    // FCN: layer3/4 keep stride 1 and dilate instead (output stride 8).
    const int s3 = dilated ? 1 : 2;
    const int d3 = dilated ? 2 : 1;
    const int s4 = dilated ? 1 : 2;
    const int d4 = dilated ? 4 : 1;

    const int c4 = stage(net, "layer3", x, 256, 1024, 6, s3, d3);
    const int c5 = stage(net, "layer4", c4, 512, 2048, 3, s4, d4);
    return Trunk{c4, c5};
}

} // namespace

Network
resnet50()
{
    Network net("resnet50", graph::Shape{3, 224, 224});
    const Trunk t = resnetTrunk(net, /*dilated=*/false);
    int x = net.addGlobalAvgPool("avgpool", t.c5);
    x = net.addLinear("fc", x, 1000);
    net.setOutput(x);
    net.validate();
    return net;
}

Network
fcnResnet50()
{
    Network net("fcn_resnet50", graph::Shape{3, 224, 224});
    const Trunk t = resnetTrunk(net, /*dilated=*/true);

    // FCNHead: 3x3 conv to 512, BN, ReLU, 1x1 conv to 21 classes.
    int x = net.addConv("classifier.0", t.c5, 512, 3, 1, 1);
    x = net.addBatchNorm("classifier.1", x);
    x = net.addActivation("classifier.2", x, OpKind::Relu);
    x = net.addConv("classifier.4", x, 21, 1, 1, 0, 1, 1, true);

    // Bilinear upsample of the logits back to input resolution.
    const int out = net.addUpsample("upsample", x, 8);

    // Auxiliary head off layer3 (part of the pretrained checkpoint;
    // contributes weights/memory but not the serving output).
    int aux = net.addConv("aux_classifier.0", t.c4, 256, 3, 1, 1);
    aux = net.addBatchNorm("aux_classifier.1", aux);
    aux = net.addActivation("aux_classifier.2", aux, OpKind::Relu);
    net.addConv("aux_classifier.4", aux, 21, 1, 1, 0, 1, 1, true);

    net.setOutput(out);

    net.validate();
    return net;
}

} // namespace jetsim::models
