/**
 * @file
 * YOLOv8n graph builder (Ultralytics v8 architecture, nano scale:
 * depth 0.33, width 0.25). Conv means conv+BN+SiLU throughout.
 */

#include "models/zoo.hh"

#include <string>

namespace jetsim::models {

using graph::Network;
using graph::OpKind;

namespace {

/** Ultralytics Conv: conv + BN + SiLU. */
int
conv(Network &net, const std::string &name, int input, int out_c,
     int k, int s)
{
    const int p = k / 2;
    int x = net.addConv(name + ".conv", input, out_c, k, s, p);
    x = net.addBatchNorm(name + ".bn", x);
    return net.addActivation(name + ".act", x, OpKind::Silu);
}

/** Bottleneck used inside C2f: two 3x3 Convs, optional residual. */
int
c2fBottleneck(Network &net, const std::string &name, int input, int c,
              bool shortcut)
{
    int x = conv(net, name + ".cv1", input, c, 3, 1);
    x = conv(net, name + ".cv2", x, c, 3, 1);
    if (shortcut)
        x = net.addAdd(name + ".add", x, input);
    return x;
}

/**
 * C2f block: 1x1 expand, channel split, n bottlenecks chained on the
 * second half, concat of every intermediate, 1x1 fuse.
 */
int
c2f(Network &net, const std::string &name, int input, int out_c, int n,
    bool shortcut)
{
    const int half = out_c / 2;
    int x = conv(net, name + ".cv1", input, out_c, 1, 1);
    const int y0 = net.addSlice(name + ".split0", x, 0, half);
    int y = net.addSlice(name + ".split1", x, half, out_c);

    std::vector<int> cat = {y0, y};
    for (int i = 0; i < n; ++i) {
        y = c2fBottleneck(net, name + ".m." + std::to_string(i), y,
                          half, shortcut);
        cat.push_back(y);
    }
    const int joined = net.addConcat(name + ".cat", std::move(cat));
    return conv(net, name + ".cv2", joined, out_c, 1, 1);
}

/** SPPF: 1x1 reduce, 3 chained 5x5 maxpools, concat, 1x1 fuse. */
int
sppf(Network &net, const std::string &name, int input, int out_c)
{
    const int hidden = net.layer(input).out.c / 2;
    int x = conv(net, name + ".cv1", input, hidden, 1, 1);
    const int p1 = net.addPool(name + ".m1", x, OpKind::MaxPool, 5, 1, 2);
    const int p2 = net.addPool(name + ".m2", p1, OpKind::MaxPool, 5, 1, 2);
    const int p3 = net.addPool(name + ".m3", p2, OpKind::MaxPool, 5, 1, 2);
    const int cat = net.addConcat(name + ".cat", {x, p1, p2, p3});
    return conv(net, name + ".cv2", cat, out_c, 1, 1);
}

/** One scale of the decoupled Detect head (box + class branches). */
void
detectScale(Network &net, const std::string &name, int input, int c2,
            int c3, int reg_max, int classes)
{
    // Box regression branch.
    int b = conv(net, name + ".cv2.0", input, c2, 3, 1);
    b = conv(net, name + ".cv2.1", b, c2, 3, 1);
    net.addConv(name + ".cv2.2", b, 4 * reg_max, 1, 1, 0, 1, 1, true);

    // Classification branch.
    int c = conv(net, name + ".cv3.0", input, c3, 3, 1);
    c = conv(net, name + ".cv3.1", c, c3, 3, 1);
    net.addConv(name + ".cv3.2", c, classes, 1, 1, 0, 1, 1, true);
}

} // namespace

Network
yolov8n()
{
    Network net("yolov8n", graph::Shape{3, 640, 640});
    constexpr int kClasses = 80;
    constexpr int kRegMax = 16;

    // Backbone.
    int p1 = conv(net, "model.0", net.inputId(), 16, 3, 2);  // 320
    int p2 = conv(net, "model.1", p1, 32, 3, 2);             // 160
    p2 = c2f(net, "model.2", p2, 32, 1, true);
    int p3 = conv(net, "model.3", p2, 64, 3, 2);             // 80
    p3 = c2f(net, "model.4", p3, 64, 2, true);
    int p4 = conv(net, "model.5", p3, 128, 3, 2);            // 40
    p4 = c2f(net, "model.6", p4, 128, 2, true);
    int p5 = conv(net, "model.7", p4, 256, 3, 2);            // 20
    p5 = c2f(net, "model.8", p5, 256, 1, true);
    p5 = sppf(net, "model.9", p5, 256);

    // Neck (FPN top-down).
    int u1 = net.addUpsample("model.10", p5, 2);             // 40
    int t1 = net.addConcat("model.11", {u1, p4});
    const int n4 = c2f(net, "model.12", t1, 128, 1, false);

    int u2 = net.addUpsample("model.13", n4, 2);             // 80
    int t2 = net.addConcat("model.14", {u2, p3});
    const int n3 = c2f(net, "model.15", t2, 64, 1, false);   // P3 out

    // Neck (PAN bottom-up).
    int d1 = conv(net, "model.16", n3, 64, 3, 2);            // 40
    int t3 = net.addConcat("model.17", {d1, n4});
    const int m4 = c2f(net, "model.18", t3, 128, 1, false);  // P4 out

    int d2 = conv(net, "model.19", m4, 128, 3, 2);           // 20
    int t4 = net.addConcat("model.20", {d2, p5});
    const int m5 = c2f(net, "model.21", t4, 256, 1, false);  // P5 out

    // Detect head: c2 = max(16, ch0/4, 4*reg_max), c3 = max(ch0, nc).
    const int c2 = 64;
    const int c3 = 80;
    detectScale(net, "model.22.p3", n3, c2, c3, kRegMax, kClasses);
    detectScale(net, "model.22.p4", m4, c2, c3, kRegMax, kClasses);
    detectScale(net, "model.22.p5", m5, c2, c3, kRegMax, kClasses);

    // Serving output: the P3 class map stands in for the gathered
    // detections (the real model concatenates flattened per-scale
    // outputs, which adds no parameters or compute).
    net.validate();
    return net;
}

} // namespace jetsim::models
