/**
 * @file
 * The paper's three vision workloads as graph builders.
 *
 * - resnet50():     torchvision ResNet-50 classifier, 3x224x224.
 * - fcnResnet50():  torchvision fcn_resnet50 semantic segmentation
 *                   (dilated output-stride-8 backbone + FCN head +
 *                   aux head), 3x224x224 as in the paper.
 * - yolov8n():      Ultralytics YOLOv8-nano detector, 3x640x640
 *                   (CSP backbone with C2f blocks, SPPF, PAN neck,
 *                   decoupled anchor-free detect head).
 *
 * Parameter counts are pinned against the published models by unit
 * tests (ResNet50 25.6 M, FCN_ResNet50 35.3 M, YOLOv8n 3.2 M).
 */

#ifndef JETSIM_MODELS_ZOO_HH
#define JETSIM_MODELS_ZOO_HH

#include <string>
#include <vector>

#include "graph/network.hh"

namespace jetsim::models {

/** ResNet-50 image classifier (ImageNet head). */
graph::Network resnet50();

/** FCN_ResNet50 segmentation model (21 classes, as torchvision). */
graph::Network fcnResnet50();

/** YOLOv8n object detector (80 classes). */
graph::Network yolov8n();

/** @name Extension models (beyond the paper's three)
 * Useful for mixed-tenancy studies and for exercising paths the
 * paper's models do not (basic residual blocks, depthwise
 * convolutions).
 * @{ */

/** ResNet-18 classifier (basic blocks, 11.7 M params). */
graph::Network resnet18();

/** MobileNetV2 classifier (inverted residuals, 3.5 M params). */
graph::Network mobilenetV2();
/** @} */

/** The model names the paper sweeps, in its presentation order. */
const std::vector<std::string> &paperModelNames();

/** Every model the zoo can build (paper three + extensions). */
const std::vector<std::string> &allModelNames();

/** Build a paper model by name; fatal() on unknown names. */
graph::Network modelByName(const std::string &name);

} // namespace jetsim::models

#endif // JETSIM_MODELS_ZOO_HH
