#include "models/zoo.hh"

#include "sim/logging.hh"

namespace jetsim::models {

const std::vector<std::string> &
paperModelNames()
{
    static const std::vector<std::string> names = {
        "resnet50", "fcn_resnet50", "yolov8n",
    };
    return names;
}

const std::vector<std::string> &
allModelNames()
{
    static const std::vector<std::string> names = {
        "resnet50", "fcn_resnet50", "yolov8n", "resnet18",
        "mobilenet_v2",
    };
    return names;
}

graph::Network
modelByName(const std::string &name)
{
    if (name == "resnet50")
        return resnet50();
    if (name == "fcn_resnet50")
        return fcnResnet50();
    if (name == "yolov8n")
        return yolov8n();
    if (name == "resnet18")
        return resnet18();
    if (name == "mobilenet_v2")
        return mobilenetV2();
    sim::fatal("unknown model '%s' (expected resnet50, fcn_resnet50, "
               "yolov8n, resnet18, mobilenet_v2)", name.c_str());
}

} // namespace jetsim::models
