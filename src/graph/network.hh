/**
 * @file
 * Neural-network graph IR.
 *
 * A Network is a DAG of layers over CHW tensors (batch is handled by
 * the engine builder, since the paper compiles engines for fixed
 * batch sizes with dynamic batching disabled). Layers are appended in
 * topological order; shape inference runs at insertion. The IR
 * computes per-layer parameter counts, multiply-accumulate counts and
 * activation sizes — the quantities every downstream cost and memory
 * model consumes.
 */

#ifndef JETSIM_GRAPH_NETWORK_HH
#define JETSIM_GRAPH_NETWORK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace jetsim::graph {

/** Tensor shape per image: channels x height x width. */
struct Shape
{
    int c = 0;
    int h = 0;
    int w = 0;

    std::int64_t
    elems() const
    {
        return static_cast<std::int64_t>(c) * h * w;
    }

    bool operator==(const Shape &) const = default;
};

/** Operator kinds supported by the IR. */
enum class OpKind {
    Input,
    Conv,          ///< 2-D convolution (groups and dilation supported)
    BatchNorm,
    Relu,
    Silu,
    Sigmoid,
    Add,           ///< elementwise sum of two tensors
    MaxPool,
    AvgPool,
    GlobalAvgPool,
    Linear,        ///< fully connected on flattened input
    Upsample,      ///< nearest/bilinear integer-factor upsample
    Concat,        ///< channel concatenation
    Slice,         ///< channel range selection
};

/** Human-readable operator name. */
const char *opName(OpKind k);

/** One node of the graph. */
struct Layer
{
    int id = -1;
    std::string name;
    OpKind kind = OpKind::Input;
    std::vector<int> inputs; ///< producer layer ids
    Shape in;                ///< first input's shape
    Shape out;               ///< inferred output shape

    // Convolution / pooling parameters (when applicable).
    int out_channels = 0;
    int kernel = 0;
    int stride = 1;
    int padding = 0;
    int dilation = 1;
    int groups = 1;
    bool bias = false;

    // Linear parameters.
    std::int64_t in_features = 0;
    std::int64_t out_features = 0;

    // Upsample factor; Slice channel range.
    int factor = 1;
    int slice_from = 0;
    int slice_to = 0;

    /** Learnable parameter count of this layer. */
    std::int64_t params() const;

    /** Multiply-accumulate operations per image. */
    double macs() const;

    /** True for layers the TensorRT-like builder can put on tensor
     * cores (dense matrix math). */
    bool tensorCoreEligible() const;
};

/** A DAG of layers with single output. */
class Network
{
  public:
    /** Create a network with one Input layer of shape @p input. */
    Network(std::string name, Shape input);

    const std::string &name() const { return name_; }

    /** @name Builders
     * Each returns the new layer's id. Input ids must already exist.
     * @{ */
    int addConv(const std::string &name, int input, int out_channels,
                int kernel, int stride = 1, int padding = 0,
                int dilation = 1, int groups = 1, bool bias = false);
    int addBatchNorm(const std::string &name, int input);
    int addActivation(const std::string &name, int input, OpKind kind);
    int addPool(const std::string &name, int input, OpKind kind,
                int kernel, int stride, int padding = 0);
    int addGlobalAvgPool(const std::string &name, int input);
    int addAdd(const std::string &name, int a, int b);
    int addLinear(const std::string &name, int input,
                  std::int64_t out_features, bool bias = true);
    int addUpsample(const std::string &name, int input, int factor);
    int addConcat(const std::string &name, std::vector<int> inputs);
    int addSlice(const std::string &name, int input, int from_c,
                 int to_c);
    /** @} */

    /** Id of the Input layer (always 0). */
    int inputId() const { return 0; }

    /** Mark the network output (defaults to the last added layer). */
    void setOutput(int id);

    int outputId() const { return output_; }

    const Layer &layer(int id) const;
    const std::vector<Layer> &layers() const { return layers_; }
    std::size_t size() const { return layers_.size(); }

    /** Total learnable parameters. */
    std::int64_t totalParams() const;

    /** Total MACs per image. */
    double totalMacs() const;

    /** Sum of all intermediate tensor elements (per image). */
    std::int64_t totalActivationElems() const;

    /**
     * Peak simultaneous activation working set (per image), computed
     * with exact liveness over the topological order: a tensor is
     * live from its production until its last consumer.
     */
    std::int64_t peakActivationElems() const;

    /** Number of layers that consume layer @p id. */
    int fanout(int id) const;

    /** Panics if the graph is malformed (dangling inputs, etc). */
    void validate() const;

    /** Render the DAG as a Graphviz dot document. */
    std::string toDot() const;

  private:
    int push(Layer l);
    Shape shapeOf(int id) const;

    std::string name_;
    std::vector<Layer> layers_;
    int output_ = 0;
};

} // namespace jetsim::graph

#endif // JETSIM_GRAPH_NETWORK_HH
