#include "graph/network.hh"

#include <algorithm>

#include "core/hot_annotations.hh"

#include "sim/logging.hh"

namespace jetsim::graph {

const char *
opName(OpKind k)
{
    switch (k) {
      case OpKind::Input: return "Input";
      case OpKind::Conv: return "Conv";
      case OpKind::BatchNorm: return "BatchNorm";
      case OpKind::Relu: return "Relu";
      case OpKind::Silu: return "Silu";
      case OpKind::Sigmoid: return "Sigmoid";
      case OpKind::Add: return "Add";
      case OpKind::MaxPool: return "MaxPool";
      case OpKind::AvgPool: return "AvgPool";
      case OpKind::GlobalAvgPool: return "GlobalAvgPool";
      case OpKind::Linear: return "Linear";
      case OpKind::Upsample: return "Upsample";
      case OpKind::Concat: return "Concat";
      case OpKind::Slice: return "Slice";
    }
    return "?";
}

std::int64_t
Layer::params() const
{
    switch (kind) {
      case OpKind::Conv: {
        std::int64_t p = static_cast<std::int64_t>(out_channels) *
                         (in.c / groups) * kernel * kernel;
        if (bias)
            p += out_channels;
        return p;
      }
      case OpKind::BatchNorm:
        // gamma, beta, running mean, running var.
        return 4LL * in.c;
      case OpKind::Linear: {
        std::int64_t p = in_features * out_features;
        if (bias)
            p += out_features;
        return p;
      }
      default:
        return 0;
    }
}

double
Layer::macs() const
{
    switch (kind) {
      case OpKind::Conv:
        return static_cast<double>(out.elems()) * (in.c / groups) *
               kernel * kernel;
      case OpKind::Linear:
        return static_cast<double>(in_features) *
               static_cast<double>(out_features);
      case OpKind::BatchNorm:
        return static_cast<double>(out.elems()); // scale+shift
      case OpKind::Relu:
      case OpKind::Sigmoid:
        return 0.5 * static_cast<double>(out.elems());
      case OpKind::Silu:
        // x * sigmoid(x): a few flops per element.
        return 2.0 * static_cast<double>(out.elems());
      case OpKind::Add:
        return 0.5 * static_cast<double>(out.elems());
      case OpKind::MaxPool:
      case OpKind::AvgPool:
        return 0.5 * static_cast<double>(out.elems()) * kernel * kernel;
      case OpKind::GlobalAvgPool:
        return 0.5 * static_cast<double>(in.elems());
      case OpKind::Upsample:
        return 0.5 * static_cast<double>(out.elems());
      case OpKind::Concat:
      case OpKind::Slice:
      case OpKind::Input:
        return 0.0;
    }
    return 0.0;
}

bool
Layer::tensorCoreEligible() const
{
    // Dense matrix math maps onto tensor cores; grouped convs with
    // tiny channel counts and everything elementwise do not.
    switch (kind) {
      case OpKind::Conv:
        return groups == 1 && in.c >= 8 && out_channels >= 8;
      case OpKind::Linear:
        return in_features >= 32 && out_features >= 32;
      default:
        return false;
    }
}

Network::Network(std::string name, Shape input)
    : name_(std::move(name))
{
    JETSIM_ASSERT(input.c > 0 && input.h > 0 && input.w > 0,
                  "input shape %dx%dx%d has a non-positive dimension",
                  input.c, input.h, input.w);
    Layer l;
    l.name = "input";
    l.kind = OpKind::Input;
    l.in = input;
    l.out = input;
    push(std::move(l));
}

JETSIM_COLD_OK("model construction: layer topology is built once before the clock starts")
int
Network::push(Layer l)
{
    l.id = static_cast<int>(layers_.size());
    for (int in : l.inputs)
        JETSIM_ASSERT(in >= 0 && in < l.id);
    layers_.push_back(std::move(l));
    output_ = layers_.back().id;
    return output_;
}

Shape
Network::shapeOf(int id) const
{
    return layer(id).out;
}

const Layer &
Network::layer(int id) const
{
    JETSIM_ASSERT(id >= 0 && id < static_cast<int>(layers_.size()));
    return layers_[static_cast<std::size_t>(id)];
}

int
Network::addConv(const std::string &name, int input, int out_channels,
                 int kernel, int stride, int padding, int dilation,
                 int groups, bool bias)
{
    JETSIM_ASSERT(out_channels > 0 && kernel > 0 && stride > 0 &&
                      padding >= 0 && dilation >= 1 && groups >= 1,
                  "conv '%s' has impossible parameters", name.c_str());
    Layer l;
    l.name = name;
    l.kind = OpKind::Conv;
    l.inputs = {input};
    l.in = shapeOf(input);
    JETSIM_ASSERT(l.in.c % groups == 0);
    l.out_channels = out_channels;
    l.kernel = kernel;
    l.stride = stride;
    l.padding = padding;
    l.dilation = dilation;
    l.groups = groups;
    l.bias = bias;

    const int eff_k = dilation * (kernel - 1) + 1;
    l.out.c = out_channels;
    l.out.h = (l.in.h + 2 * padding - eff_k) / stride + 1;
    l.out.w = (l.in.w + 2 * padding - eff_k) / stride + 1;
    JETSIM_ASSERT(l.out.h > 0 && l.out.w > 0);
    return push(std::move(l));
}

int
Network::addBatchNorm(const std::string &name, int input)
{
    Layer l;
    l.name = name;
    l.kind = OpKind::BatchNorm;
    l.inputs = {input};
    l.in = shapeOf(input);
    l.out = l.in;
    return push(std::move(l));
}

int
Network::addActivation(const std::string &name, int input, OpKind kind)
{
    JETSIM_ASSERT(kind == OpKind::Relu || kind == OpKind::Silu ||
                  kind == OpKind::Sigmoid);
    Layer l;
    l.name = name;
    l.kind = kind;
    l.inputs = {input};
    l.in = shapeOf(input);
    l.out = l.in;
    return push(std::move(l));
}

int
Network::addPool(const std::string &name, int input, OpKind kind,
                 int kernel, int stride, int padding)
{
    JETSIM_ASSERT(kind == OpKind::MaxPool || kind == OpKind::AvgPool);
    JETSIM_ASSERT(kernel > 0 && stride > 0 && padding >= 0,
                  "pool '%s' has impossible parameters", name.c_str());
    Layer l;
    l.name = name;
    l.kind = kind;
    l.inputs = {input};
    l.in = shapeOf(input);
    l.kernel = kernel;
    l.stride = stride;
    l.padding = padding;
    l.out.c = l.in.c;
    l.out.h = (l.in.h + 2 * padding - kernel) / stride + 1;
    l.out.w = (l.in.w + 2 * padding - kernel) / stride + 1;
    JETSIM_ASSERT(l.out.h > 0 && l.out.w > 0);
    return push(std::move(l));
}

int
Network::addGlobalAvgPool(const std::string &name, int input)
{
    Layer l;
    l.name = name;
    l.kind = OpKind::GlobalAvgPool;
    l.inputs = {input};
    l.in = shapeOf(input);
    l.out = Shape{l.in.c, 1, 1};
    return push(std::move(l));
}

int
Network::addAdd(const std::string &name, int a, int b)
{
    Layer l;
    l.name = name;
    l.kind = OpKind::Add;
    l.inputs = {a, b};
    l.in = shapeOf(a);
    JETSIM_ASSERT(shapeOf(a) == shapeOf(b));
    l.out = l.in;
    return push(std::move(l));
}

int
Network::addLinear(const std::string &name, int input,
                   std::int64_t out_features, bool bias)
{
    JETSIM_ASSERT(out_features > 0,
                  "linear '%s' has non-positive out_features",
                  name.c_str());
    Layer l;
    l.name = name;
    l.kind = OpKind::Linear;
    l.inputs = {input};
    l.in = shapeOf(input);
    l.in_features = l.in.elems();
    l.out_features = out_features;
    l.bias = bias;
    l.out = Shape{static_cast<int>(out_features), 1, 1};
    return push(std::move(l));
}

int
Network::addUpsample(const std::string &name, int input, int factor)
{
    JETSIM_ASSERT(factor >= 2);
    Layer l;
    l.name = name;
    l.kind = OpKind::Upsample;
    l.inputs = {input};
    l.in = shapeOf(input);
    l.factor = factor;
    l.out = Shape{l.in.c, l.in.h * factor, l.in.w * factor};
    return push(std::move(l));
}

int
Network::addConcat(const std::string &name, std::vector<int> inputs)
{
    JETSIM_ASSERT(inputs.size() >= 2);
    Layer l;
    l.name = name;
    l.kind = OpKind::Concat;
    l.in = shapeOf(inputs.front());
    int c = 0;
    for (int in : inputs) {
        const Shape s = shapeOf(in);
        JETSIM_ASSERT(s.h == l.in.h && s.w == l.in.w);
        c += s.c;
    }
    l.inputs = std::move(inputs);
    l.out = Shape{c, l.in.h, l.in.w};
    return push(std::move(l));
}

int
Network::addSlice(const std::string &name, int input, int from_c,
                  int to_c)
{
    Layer l;
    l.name = name;
    l.kind = OpKind::Slice;
    l.inputs = {input};
    l.in = shapeOf(input);
    JETSIM_ASSERT(from_c >= 0 && to_c <= l.in.c && from_c < to_c);
    l.slice_from = from_c;
    l.slice_to = to_c;
    l.out = Shape{to_c - from_c, l.in.h, l.in.w};
    return push(std::move(l));
}

void
Network::setOutput(int id)
{
    JETSIM_ASSERT(id >= 0 && id < static_cast<int>(layers_.size()));
    output_ = id;
}

std::int64_t
Network::totalParams() const
{
    std::int64_t p = 0;
    for (const auto &l : layers_)
        p += l.params();
    return p;
}

double
Network::totalMacs() const
{
    double m = 0;
    for (const auto &l : layers_)
        m += l.macs();
    return m;
}

std::int64_t
Network::totalActivationElems() const
{
    std::int64_t n = 0;
    for (const auto &l : layers_)
        if (l.kind != OpKind::Input)
            n += l.out.elems();
    return n;
}

std::int64_t
Network::peakActivationElems() const
{
    // Exact liveness over the (already topological) layer order.
    const int n = static_cast<int>(layers_.size());
    std::vector<int> last_use(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        last_use[static_cast<std::size_t>(i)] = i;
        for (int in : layers_[static_cast<std::size_t>(i)].inputs)
            last_use[static_cast<std::size_t>(in)] = i;
    }
    last_use[static_cast<std::size_t>(output_)] = n;

    std::int64_t live = 0, peak = 0;
    for (int i = 0; i < n; ++i) {
        live += layers_[static_cast<std::size_t>(i)].out.elems();
        peak = std::max(peak, live);
        for (int j = 0; j < i; ++j)
            if (last_use[static_cast<std::size_t>(j)] == i)
                live -= layers_[static_cast<std::size_t>(j)].out.elems();
    }
    return peak;
}

int
Network::fanout(int id) const
{
    int n = 0;
    for (const auto &l : layers_)
        for (int in : l.inputs)
            if (in == id)
                ++n;
    return n;
}

std::string
Network::toDot() const
{
    std::string out = "digraph \"" + name_ + "\" {\n"
                      "  rankdir=TB;\n  node [shape=box, "
                      "fontsize=10];\n";
    char buf[192];
    for (const auto &l : layers_) {
        std::snprintf(buf, sizeof(buf),
                      "  n%d [label=\"%s\\n%s %dx%dx%d\"];\n", l.id,
                      l.name.c_str(), opName(l.kind), l.out.c,
                      l.out.h, l.out.w);
        out += buf;
        for (int in : l.inputs) {
            std::snprintf(buf, sizeof(buf), "  n%d -> n%d;\n", in,
                          l.id);
            out += buf;
        }
    }
    out += "}\n";
    return out;
}

void
Network::validate() const
{
    JETSIM_ASSERT(!layers_.empty());
    JETSIM_ASSERT(layers_.front().kind == OpKind::Input);
    for (const auto &l : layers_) {
        for (int in : l.inputs)
            JETSIM_ASSERT(in >= 0 && in < l.id);
        JETSIM_ASSERT(l.out.elems() > 0);
        if (l.kind != OpKind::Input)
            JETSIM_ASSERT(!l.inputs.empty());
    }
}

} // namespace jetsim::graph
