/**
 * @file
 * jetbound: sound static bound analyzer for deployment specs.
 *
 * Derives per-process latency / period / throughput / blocking /
 * queue-depth intervals and a memory high-water interval for a grid
 * cell by abstract interpretation of the simulator's cost models
 * (src/absint) — without running a single simulated tick. The same
 * intervals drive the capacity planner's sweep pruning.
 *
 *   jetbound --model=resnet50 --device=orin-nano --procs=2
 *   jetbound --zoo --device=all                # every zoo model
 *   jetbound --compare-sim                     # soundness gate
 *   jetbound --json
 *
 * --compare-sim runs the simulator on the same spec and asserts
 * every measured value lands inside its static interval (the
 * soundness property, also enforced per-commit by tests/absint and
 * CI pass 1e). Exit status: 0 ok, 1 soundness violation, 2 usage.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "absint/bounds.hh"
#include "argparse.hh"
#include "core/profiler.hh"
#include "lint/finding.hh"
#include "models/zoo.hh"
#include "soc/device_spec.hh"
#include "soc/precision.hh"

using namespace jetsim;

namespace {

/** Containment with a relative slack for float accumulation. */
bool
inside(double v, const absint::Interval &iv)
{
    const double eps = 1e-6 * std::max(1.0, iv.hi) + 1e-9;
    return iv.contains(v, eps);
}

void
printBounds(const absint::DeploymentBounds &b)
{
    std::printf("jetbound: %s x%d procs, window %.0f ms\n",
                b.device.c_str(), b.processes, b.window_ms);
    std::printf(
        "  memory     %s MiB of %.1f budget (D001 sum %.1f)%s%s\n",
        b.mem_mib.str().c_str(), b.available_mib, b.whole_sum_mib,
        b.must_oom ? "  MUST-OOM" : "",
        !b.must_oom && b.may_oom ? "  may-OOM" : "");
    std::printf("  aggregate  <= %.1f fps total, <= %.1f fps/process "
                "mean; %d contending stream pair(s)\n",
                b.total_throughput_hi_fps, b.mean_throughput_hi_fps,
                b.contending_pairs);
    for (const auto &p : b.procs) {
        std::printf("  %s: K=%d queue<=%d\n", p.name.c_str(),
                    p.kernels_per_ec, p.queue_depth_hi);
        std::printf("    gpu/EC ms   %s\n", p.gpu_ec_ms.str().c_str());
        std::printf("    latency ms  %s\n", p.latency_ms.str().c_str());
        std::printf("    period ms   %s\n", p.period_ms.str().c_str());
        std::printf("    tput fps    %s\n",
                    p.throughput_fps.str().c_str());
        std::printf("    blocking ms <= %.3f\n", p.blocking_ms_hi);
    }
}

void
jsonInterval(std::string &out, const char *key,
             const absint::Interval &iv)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\":{\"lo\":%.6f,\"hi\":%.6f}",
                  key, iv.lo, iv.hi);
    out += buf;
}

std::string
toJson(const absint::DeploymentBounds &b)
{
    char buf[256];
    std::string out = "{\"schema_version\":";
    out += std::to_string(lint::kJsonSchemaVersion);
    out += ",\"tool\":\"jetbound\",\"device\":\"" + b.device + "\"";
    std::snprintf(buf, sizeof(buf),
                  ",\"ok\":%s,\"processes\":%d,\"available_mib\":%.1f,"
                  "\"whole_sum_mib\":%.1f,\"must_oom\":%s,"
                  "\"may_oom\":%s,\"contending_pairs\":%d,"
                  "\"total_throughput_hi_fps\":%.3f,",
                  b.ok ? "true" : "false", b.processes,
                  b.available_mib, b.whole_sum_mib,
                  b.must_oom ? "true" : "false",
                  b.may_oom ? "true" : "false", b.contending_pairs,
                  b.total_throughput_hi_fps);
    out += buf;
    jsonInterval(out, "mem_mib", b.mem_mib);
    out += ",\"procs\":[";
    bool first = true;
    for (const auto &p : b.procs) {
        if (!first)
            out += ",";
        first = false;
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"kernels\":%d,"
                      "\"queue_depth_hi\":%d,\"blocking_ms_hi\":%.4f,",
                      p.name.c_str(), p.kernels_per_ec,
                      p.queue_depth_hi, p.blocking_ms_hi);
        out += buf;
        jsonInterval(out, "gpu_ec_ms", p.gpu_ec_ms);
        out += ",";
        jsonInterval(out, "latency_ms", p.latency_ms);
        out += ",";
        jsonInterval(out, "period_ms", p.period_ms);
        out += ",";
        jsonInterval(out, "throughput_fps", p.throughput_fps);
        out += "}";
    }
    out += "]}";
    return out;
}

/** Check one measured value; prints the comparison, returns ok. */
bool
gate(const char *what, const std::string &who, double v,
     const absint::Interval &iv)
{
    const bool ok = inside(v, iv);
    std::printf("    %-12s %10.3f in %-22s %s\n", what, v,
                iv.str().c_str(), ok ? "ok" : "VIOLATION");
    if (!ok)
        std::fprintf(stderr,
                     "jetbound: SOUNDNESS VIOLATION %s %s: measured "
                     "%.6f outside %s\n",
                     who.c_str(), what, v, iv.str().c_str());
    return ok;
}

/** Run the simulator on @p spec and gate every measurement against
 * the static bounds. */
bool
compareSim(const core::ExperimentSpec &spec,
           const absint::DeploymentBounds &b)
{
    const core::ExperimentResult res = core::runExperiment(spec);
    bool ok = true;
    std::printf("  compare-sim %s\n", spec.label().c_str());

    // Deployment outcome: the liveness analysis is exact for this
    // program shape, so the verdicts must agree with the simulator.
    if (res.all_deployed == b.must_oom) {
        std::fprintf(stderr,
                     "jetbound: SOUNDNESS VIOLATION deploy: sim "
                     "all_deployed=%d vs must_oom=%d\n",
                     res.all_deployed, b.must_oom);
        ok = false;
    }
    if (!res.all_deployed) {
        std::printf("    deployment fails (memory), as proven\n");
        return ok;
    }
    ok &= gate("mem MiB", "deployment", res.workload_mem_mb,
               b.mem_mib);

    const double eps =
        1e-6 * std::max(1.0, b.mean_throughput_hi_fps);
    if (res.throughput_per_process >
        b.mean_throughput_hi_fps + eps) {
        std::fprintf(stderr,
                     "jetbound: SOUNDNESS VIOLATION mean fps %.3f > "
                     "%.3f\n",
                     res.throughput_per_process,
                     b.mean_throughput_hi_fps);
        ok = false;
    }

    for (const auto &m : res.procs) {
        const absint::ProcBounds *pb = nullptr;
        for (const auto &p : b.procs)
            if (p.name == m.name)
                pb = &p;
        if (!pb || !m.deployed)
            continue;
        std::printf("  %s (%llu ECs)\n", m.name.c_str(),
                    static_cast<unsigned long long>(m.ecs));
        if (m.ecs >= 1)
            ok &= gate("latency ms", m.name, m.pipeline_ms,
                       pb->latency_ms);
        if (m.ecs >= 2) // period needs two completions for a sample
            ok &= gate("period ms", m.name, m.ec_ms, pb->period_ms);
        if (m.ecs >= 1)
            ok &= gate("blocking ms", m.name, m.blocking_ms_per_ec,
                       {0.0, pb->blocking_ms_hi});
        ok &= gate("tput fps", m.name, m.throughput,
                   pb->throughput_fps);
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    tools::ArgParser args("jetbound",
                          "static latency/memory/queue bound analyzer");
    args.add("model", "resnet50", "zoo model name");
    args.add("device", "orin-nano", "target device, or 'all'");
    args.add("precision", "fp16", "engine precision");
    args.add("batch", "1", "engine batch size");
    args.add("procs", "1", "concurrent process count");
    args.add("pre-enqueue", "1", "trtexec pre-enqueue depth");
    args.add("deep", "false", "phase-2 (Nsight intrusion) bounds");
    args.add("no-dvfs", "false", "pin the GPU clock (ablation A2)");
    args.add("warmup-ms", "250", "sim warm-up for --compare-sim");
    args.add("duration-ms", "1500", "measurement window");
    args.add("zoo", "false", "analyze every zoo model");
    args.add("json", "false", "emit bounds as JSON");
    args.add("compare-sim", "false",
             "run the simulator and gate soundness");
    if (!args.parse(argc, argv))
        return 2;

    std::vector<std::string> devices;
    if (args.str("device") == "all")
        devices = soc::deviceNames();
    else
        devices = {args.str("device")};
    std::vector<std::string> model_list;
    if (args.boolean("zoo"))
        model_list = models::allModelNames();
    else
        model_list = {args.str("model")};

    bool sound = true;
    bool analyzable = true;
    for (const auto &device : devices) {
        for (const auto &model : model_list) {
            core::ExperimentSpec spec;
            spec.device = device;
            spec.model = model;
            spec.precision =
                soc::precisionFromName(args.str("precision"));
            spec.batch = args.intval("batch");
            spec.processes = args.intval("procs");
            spec.pre_enqueue = args.intval("pre-enqueue");
            spec.phase = args.boolean("deep") ? core::Phase::Deep
                                              : core::Phase::Light;
            spec.dvfs = !args.boolean("no-dvfs");
            spec.warmup = sim::msec(args.intval("warmup-ms"));
            spec.duration = sim::msec(args.intval("duration-ms"));

            const auto b = absint::analyze(spec);
            if (!b.ok) {
                std::fprintf(stderr, "jetbound: %s: %s\n",
                             spec.label().c_str(), b.error.c_str());
                analyzable = false;
                continue;
            }
            if (args.boolean("json"))
                std::printf("%s\n", toJson(b).c_str());
            else
                printBounds(b);
            if (args.boolean("compare-sim"))
                sound &= compareSim(spec, b);
        }
    }
    if (!analyzable)
        return 2;
    if (!sound)
        return 1;
    if (args.boolean("compare-sim"))
        std::printf("jetbound: all measurements inside their static "
                    "bounds\n");
    return 0;
}
