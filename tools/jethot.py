#!/usr/bin/env python3
"""jethot: static hot-path discipline analyzer for jetsim.

The event core's performance contract (DESIGN.md §4j) says the
steady-state dispatch path allocates nothing, locks nothing, throws
nothing, and never enters the kernel. PR 4 / PR 9 made that true and
probe it at runtime (`micro_sim --assert-sbo`, the operator-new
counting test, TSan); jethot proves it *statically*, the way jetrace
proves lock-order discipline: a call-graph reachability pass from
annotated hot roots, where any reachable forbidden operation is a
finding reported with its full call chain.

Annotations (src/core/hot_annotations.hh; all expand to nothing):

  JETSIM_HOT               on a definition: hot-path root
  JETSIM_COLD_OK("why")    sanctioned cold escape — on a definition
                           the whole body is exempt and traversal
                           stops; on/above a statement that statement
                           is exempt (and its call edges are cut)
  JETSIM_HOT_BOUNDARY      traversal stops; body audited elsewhere
                           (dispatch indirections, diagnostics paths)

Comment forms for spots macros cannot reach:
  // jethot: boundary(NAME) why     declare callee NAME a boundary
  // jethot: cold-ok(why)           statement-level escape
  // jethot: allow(rule) why        suppress one rule on one line

Statements that *begin with* a JETSIM_* macro invocation (JETSIM_CHECK
/ JETSIM_VIOLATION / JETSIM_ASSERT ...) are treated as boundaries
automatically: they expand to diagnostics behind an
invariant-already-broken branch and are the sanctioned error arm of a
hot function.

Cross-validation against the runtime probes: every heap-fallback
counter site (`noteSboMiss()` callers and the InlineFn
heap-fallback counter) must sit on a line covered by JETSIM_COLD_OK —
the static escape set and the runtime counter set must name exactly
the same sites (`unguarded-sbo-fallback` otherwise). `--selftest`
seeds hot-path alloc / lock / throw violations (plus spin, boundary,
cold-ok and sbo fixtures) and checks each is found with a *minimised*
chain, mirroring the jetrace/jetmc cross-check pattern.

Backends: the lexical engine (tools/cpplex.py, shared with
jetrace/detlint) is the tested, always-available path. With the
libclang Python bindings importable (`--backend libclang`/`auto`),
AST-walked call edges augment the lexical graph (catching calls the
regex misses); rule matching stays lexical either way. This container
ships no bindings, so `auto` is lexical here.

Usage: tools/jethot.py [--root DIR] [--json] [--sarif] [--dot]
                       [--selftest] [--backend auto|lex|libclang]
                       [--list-rules] [paths...]
Exit: 0 clean, 1 findings (or failed self-test), 2 usage error.

--json emits {"schema_version": 1, "tool": "jethot", "findings":
[...], "files": N, "roots": [...], "reachable": N, "cold_ok": [...],
"boundaries": [...], "sbo_sites": [...]} — the same schema_version
jetlint/jetrace/detlint stamp. Findings carry "chain": the minimised
root -> ... -> offender call path.
"""

import argparse
import json
import os
import re
import sys
from collections import deque

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import cpplex  # noqa: E402

SCHEMA_VERSION = cpplex.SCHEMA_VERSION

RULES = [
    ("hot-alloc",
     "heap allocation reachable from a hot root (new/malloc/"
     "allocating std container growth/std::string/std::function)"),
    ("hot-lock",
     "core::Mutex/LockGuard acquisition (or raw std lock) reachable "
     "from a hot root"),
    ("hot-spin",
     "unbounded atomic retry/spin loop (CAS loop or while-on-load) "
     "reachable from a hot root, outside the allow() whitelist"),
    ("hot-throw",
     "throw reachable from a hot root"),
    ("hot-io",
     "blocking syscall / IO / logging / sleep reachable from a hot "
     "root"),
    ("hot-env",
     "core::env()/getenv reachable from a hot root (env reads are "
     "startup-only by contract)"),
    ("unguarded-sbo-fallback",
     "runtime heap-fallback counter site (noteSboMiss / InlineFn "
     "fallback) not covered by a JETSIM_COLD_OK escape"),
]

allowed = cpplex.allow_matcher("jethot")

HOT_RE = re.compile(r"\bJETSIM_HOT\b")
BOUNDARY_RE = re.compile(r"\bJETSIM_HOT_BOUNDARY\b")
COLD_OK_RAW_RE = re.compile(r'\bJETSIM_COLD_OK\s*\(\s*"([^"]*)"')
COLD_OK_CMT_RE = re.compile(r"jethot:\s*cold-ok\(([^)]*)\)")
BOUNDARY_DECL_RE = re.compile(r"jethot:\s*boundary\((\w+)\)\s*(.*)")

CALL_RE = re.compile(r"([\w~:]+)\s*\(")

# Member names that are std::atomic's API: a dotted call to one of
# these is synchronisation on a data member, not a call into repo
# code, and must not alias a repo function that shares the base name
# (ResultCache::store vs. `sense_.store(...)`). Rule matching still
# sees the text — only the call *edge* is dropped.
ATOMIC_MEMBERS = frozenset((
    "load", "store", "exchange", "compare_exchange_weak",
    "compare_exchange_strong", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "test_and_set", "notify_one",
    "notify_all", "wait"))
MACRO_NAME_RE = re.compile(r"^JETSIM_[A-Z_]+$")
MACRO_STMT_RE = re.compile(r"\s*JETSIM_[A-Z_]+\s*\(")
LOOP_SIG_RE = re.compile(r"\s*(?:for|while|do)\b")

SBO_SITE_RE = re.compile(r"(?:\.|->)\s*noteSboMiss\s*\(|"
                         r"\+\+\s*sbo_misses_|"
                         r"\bg_inline_fn_heap_fallbacks\s*\.\s*"
                         r"fetch_add\b")

# (rule, compiled regex, what-it-is) — matched against noise-stripped
# statement text. Placement new (`new (buf) T`) is construction into
# existing storage and is deliberately not matched.
STMT_PATTERNS = [
    ("hot-alloc", re.compile(r"\bnew\b(?!\s*\()"),
     "operator new"),
    ("hot-alloc", re.compile(r"\b(?:malloc|calloc|realloc|strdup|"
                             r"aligned_alloc)\s*\("),
     "C heap allocation"),
    ("hot-alloc", re.compile(r"\bmake_(?:unique|shared)\s*<"),
     "make_unique/make_shared"),
    ("hot-alloc", re.compile(r"\bto_string\s*\("),
     "std::to_string (allocates)"),
    ("hot-alloc", re.compile(r"\bstd::string\s*[({]"),
     "std::string construction"),
    ("hot-alloc", re.compile(r"\bstd::function\s*<"),
     "std::function construction (may allocate)"),
    ("hot-alloc", re.compile(r"\bstd::[io]?stringstream\b"),
     "stringstream construction"),
    ("hot-alloc", re.compile(r"(?:\.|->)\s*(?:push_back|emplace_back|"
                             r"emplace|emplace_front|push_front|"
                             r"insert|resize|reserve|append|assign)"
                             r"\s*\("),
     "container growth call"),
    ("hot-lock", re.compile(r"\b(?:core::)?LockGuard\b"),
     "LockGuard acquisition"),
    ("hot-lock", re.compile(r"(?:\.|->)\s*lock\s*\("),
     ".lock() call"),
    ("hot-lock", re.compile(r"\bstd::(?:mutex|lock_guard|unique_lock|"
                            r"scoped_lock|shared_lock|"
                            r"condition_variable)\b"),
     "raw std lock primitive"),
    ("hot-throw", re.compile(r"\bthrow\b"),
     "throw"),
    ("hot-io", re.compile(r"\b(?:printf|fprintf|vfprintf|snprintf|"
                          r"vsnprintf|sprintf|puts|fputs|fputc|"
                          r"putchar|fwrite|fread|fopen|fclose|"
                          r"fflush|fgets|getchar|system|popen)"
                          r"\s*\("),
     "stdio/syscall"),
    ("hot-io", re.compile(r"\bstd::c(?:out|err|log)\b"),
     "iostream write"),
    ("hot-io", re.compile(r"\bstd::[io]?fstream\b"),
     "file stream"),
    ("hot-io", re.compile(r"\b(?:usleep|nanosleep|sleep)\s*\("),
     "sleep"),
    ("hot-io", re.compile(r"\bstd::this_thread::\w+"),
     "thread yield/sleep"),
    ("hot-io", re.compile(r"\b(?:inform|warn|fatal|panic|assertFail|"
                          r"vformat)\s*\("),
     "logging/format call"),
    ("hot-env", re.compile(r"\bcore::env\s*\(|(?<![\w:])getenv"
                           r"\s*\("),
     "environment read"),
    # while-on-load / CAS-in-condition spins (incl. `} while (cas)`)
    ("hot-spin", re.compile(r"\bwhile\s*\([^;{]*(?:"
                            r"compare_exchange_\w+|"
                            r"(?:\.|->)\s*exchange\s*\(|"
                            r"(?:\.|->)\s*load\s*\()"),
     "atomic spin-wait loop"),
]

# CAS inside a loop body (retry loop) — needs loop-scope context.
SPIN_BODY_RE = re.compile(r"\bcompare_exchange_\w+|"
                          r"(?:\.|->)\s*exchange\s*\(")
# Only this subset is meaningful on control-flow condition text.
SIG_RULES = {"hot-spin"}


def cold_ok_reason(raw_lines, lines_0):
    """JETSIM_COLD_OK / `// jethot: cold-ok(...)` on any of the
    0-based lines; returns the reason string or None."""
    for li in lines_0:
        if 0 <= li < len(raw_lines):
            m = COLD_OK_RAW_RE.search(raw_lines[li])
            if m:
                return m.group(1) or "(no reason)"
            m = COLD_OK_CMT_RE.search(raw_lines[li])
            if m:
                return m.group(1).strip() or "(no reason)"
    return None


class Analysis:
    """Whole-audit state: the merged function table plus the global
    annotation / escape / sbo ledgers."""

    def __init__(self):
        # key -> {display, defs[(path,line)], hot, boundary,
        #         cold_ok, hits[(rule,path,line,msg)], calls[(callee,
        #         path,line)], is_lambda}
        self.functions = {}
        self.boundary_decls = []   # {name, path, line, why}
        self.boundary_names = set()
        self.cold_escapes = []     # {path, line, scope, fn, why}
        self.sbo_sites = []        # {path, line, covered}
        self.findings = []         # non-reachability findings (sbo)

    def rec(self, key, display):
        return self.functions.setdefault(key, {
            "display": display, "defs": [], "hot": False,
            "boundary": False, "cold_ok": None, "hits": [],
            "calls": [], "is_lambda": key.startswith("<lambda@")})


def blank_preprocessor(code_lines):
    """Blank out #directives incl. backslash continuations, so macro
    *definitions* (JETSIM_CHECK's braces and report() calls) never
    reach the scope walker — expansion sites are what gets audited."""
    out = []
    cont = False
    for code in code_lines:
        s = code.strip()
        if cont or s.startswith("#"):
            cont = s.endswith("\\")
            out.append("")
        else:
            cont = False
            out.append(code)
    return out


def scan_file(path, rel, an):
    with open(path, encoding="utf-8", errors="replace") as f:
        raw_lines = f.read().splitlines()
    code_lines = blank_preprocessor(cpplex.strip_file(raw_lines))

    for idx, raw in enumerate(raw_lines):
        m = BOUNDARY_DECL_RE.search(raw)
        if m:
            an.boundary_names.add(m.group(1))
            an.boundary_decls.append({
                "name": m.group(1), "path": rel, "line": idx + 1,
                "why": m.group(2).strip()})

    for idx, code in enumerate(code_lines):
        if SBO_SITE_RE.search(code):
            why = cold_ok_reason(raw_lines, [idx, idx - 1])
            an.sbo_sites.append({"path": rel, "line": idx + 1,
                                 "covered": why is not None,
                                 "why": why})
            if why is None and not allowed(raw_lines, idx,
                                           "unguarded-sbo-fallback"):
                an.findings.append({
                    "path": rel, "line": idx + 1,
                    "rule": "unguarded-sbo-fallback",
                    "message": "runtime heap-fallback counter site "
                               "without a JETSIM_COLD_OK escape — "
                               "the static escape set must name "
                               "every site micro_sim --assert-sbo "
                               "counts", "chain": []})

    w = cpplex.Walker()
    fn_stack = []      # keys of enclosing function records
    loop_stack = []    # parallel to w.scopes: is-loop flags

    def span_lines0(start_1, end_1):
        """0-based raw indices of a pending span + the line above."""
        return list(range(max(0, start_1 - 2), end_1))

    def suppressed(rule, start_1, end_1):
        return any(allowed(raw_lines, li, rule)
                   for li in span_lines0(start_1, end_1))

    def scan_text(text, start_1, end_1, is_sig):
        key = fn_stack[-1]
        rec = an.functions[key]
        why = None
        if "JETSIM_COLD_OK" in text:
            why = cold_ok_reason(raw_lines, span_lines0(start_1,
                                                        end_1))
        else:
            for li in span_lines0(start_1, end_1):
                if 0 <= li < len(raw_lines) and \
                        COLD_OK_CMT_RE.search(raw_lines[li]):
                    why = cold_ok_reason(raw_lines, [li])
                    break
        if why is not None:
            an.cold_escapes.append({"path": rel, "line": start_1,
                                    "scope": "statement",
                                    "fn": rec["display"],
                                    "why": why})
            return
        if MACRO_STMT_RE.match(text):
            return  # check/violation/assert error arm: boundary
        for m in CALL_RE.finditer(text):
            parts = [p for p in m.group(1).split("::") if p]
            base = parts[-1]
            if base in cpplex.CONTROL_KEYWORDS or \
                    MACRO_NAME_RE.match(base):
                continue
            pre = text[:m.start(1)].rstrip()
            if base in ATOMIC_MEMBERS and \
                    (pre.endswith(".") or pre.endswith("->")):
                continue
            # Keep one level of qualification: `Class::fn` resolves
            # exactly; deeper namespace prefixes add nothing.
            rec["calls"].append(("::".join(parts[-2:]), rel, end_1))
        in_loop = any(loop_stack)
        for rule, rx, what in STMT_PATTERNS:
            if is_sig and rule not in SIG_RULES:
                continue
            mm = rx.search(text)
            if mm and not suppressed(rule, start_1, end_1):
                rec["hits"].append((rule, rel, start_1, what))
        if not is_sig and in_loop and SPIN_BODY_RE.search(text) and \
                not re.search(r"\bwhile\s*\(", text) and \
                not suppressed("hot-spin", start_1, end_1):
            rec["hits"].append(("hot-spin", rel, start_1,
                                "atomic RMW retry inside a loop"))

    def enter_function(sc, sig, lineno):
        start = w.pending_start
        if sc.name == "<lambda>":
            key = f"<lambda@{rel}:{lineno}>"
        else:
            # Class-qualified keys: an out-of-line `C::f` definition
            # and an in-class definition of the same method share the
            # key `C::f`; unrelated functions that merely share a base
            # name (mc-harness `post` vs. ShardedEngine::post) stay
            # distinct records.
            parts = [p for p in sc.name.split("::") if p]
            if len(parts) >= 2:
                key = "::".join(parts[-2:])
            else:
                cls = next((s.name for s in reversed(w.scopes[:-1])
                            if s.kind == "class" and s.name), None)
                key = f"{cls}::{parts[-1]}" if cls else parts[-1]
        display = key
        # A lambda is reachable from the function that captures it.
        if fn_stack:
            an.functions[fn_stack[-1]]["calls"].append(
                (key, rel, lineno))
            # Calls in the capture statement text (`eq_.schedule(t,
            # [this] {`) belong to the enclosing function.
            scan_text(sig, start, lineno, True)
        rec = an.rec(key, display)
        rec["defs"].append((rel, lineno))
        span = span_lines0(start, lineno)
        if HOT_RE.search(sig) or \
                any(0 <= li < len(raw_lines) and
                    re.search(r"jethot:\s*hot\b", raw_lines[li])
                    for li in span):
            rec["hot"] = True
        if BOUNDARY_RE.search(sig) or \
                any(0 <= li < len(raw_lines) and
                    re.search(r"jethot:\s*boundary\b(?!\()",
                              raw_lines[li]) for li in span):
            rec["boundary"] = True
            an.boundary_decls.append({
                "name": display, "path": rel, "line": lineno,
                "why": "JETSIM_HOT_BOUNDARY definition"})
        if "JETSIM_COLD_OK" in sig:
            why = cold_ok_reason(raw_lines, span) or "(no reason)"
            rec["cold_ok"] = why
            an.cold_escapes.append({"path": rel, "line": lineno,
                                    "scope": "function",
                                    "fn": display, "why": why})
        fn_stack.append(key)

    def on_open(sc, sig, lineno):
        if sc.kind == "function":
            loop_stack.append(False)
            enter_function(sc, sig, lineno)
        elif sc.kind == "block":
            loop_stack.append(bool(LOOP_SIG_RE.match(sig)))
            if fn_stack:
                scan_text(sig, w.pending_start, lineno, True)
        else:
            loop_stack.append(False)

    def on_close(sc):
        if loop_stack:
            loop_stack.pop()
        if sc.kind == "function" and fn_stack:
            fn_stack.pop()

    def on_statement(stmt, lineno):
        if fn_stack and stmt.strip():
            scan_text(stmt, w.pending_start, lineno, False)

    w.on_open = on_open
    w.on_close = on_close
    w.on_statement = on_statement
    w.run(code_lines)


def try_libclang():
    try:
        import clang.cindex as ci  # noqa: F401
        return ci
    except Exception:
        return None


def libclang_edges(ci, path, rel, include_dir, an):
    """AST refinement: add call edges the lexical pass may have
    missed (overload sets, operator calls). Rule matching stays
    lexical — the AST only widens reachability, so it can only make
    the audit stricter, never hide a finding."""
    tu = ci.Index.create().parse(
        path, args=["-std=c++20", "-x", "c++", "-I" + include_dir])

    def walk(cur, fn_key):
        for c in cur.get_children():
            if c.location.file and str(c.location.file) != path:
                continue
            k = fn_key
            if c.kind in (ci.CursorKind.FUNCTION_DECL,
                          ci.CursorKind.CXX_METHOD,
                          ci.CursorKind.CONSTRUCTOR,
                          ci.CursorKind.DESTRUCTOR) and \
                    c.is_definition():
                k = c.spelling
                sp = c.semantic_parent
                if sp is not None and sp.kind in (
                        ci.CursorKind.CLASS_DECL,
                        ci.CursorKind.STRUCT_DECL,
                        ci.CursorKind.CLASS_TEMPLATE):
                    k = f"{sp.spelling}::{k}"
                an.rec(k, k)["defs"].append(
                    (rel, c.location.line))
            elif c.kind == ci.CursorKind.CALL_EXPR and k:
                an.rec(k, k)["calls"].append(
                    (c.spelling, rel, c.location.line))
            walk(c, k)

    walk(tu.cursor, None)


def build_resolver(an):
    """Map a callee name as written to candidate record keys: exact
    key first, then the caller's own class (mirroring C++ member
    lookup), then every record sharing the base name — a sound
    over-approximation for virtual dispatch and free calls."""
    base_index = {}
    for k in an.functions:
        base_index.setdefault(k.split("::")[-1], []).append(k)

    def resolve(caller, callee):
        if callee in an.functions:
            return (callee,)
        if "::" not in callee and "::" in caller:
            own = caller.split("::")[0] + "::" + callee
            if own in an.functions:
                return (own,)
        return tuple(k for k in base_index.get(
            callee.split("::")[-1], ()) if k != caller)
    return resolve


def propagate(an):
    """BFS reachability from hot roots; parents give the *minimised*
    (fewest-call) chain for every finding."""
    resolve = build_resolver(an)
    roots = sorted(k for k, r in an.functions.items() if r["hot"])
    parent = {}
    visited = set(roots)
    scannable = []
    used_escapes = []
    dq = deque(roots)
    while dq:
        k = dq.popleft()
        rec = an.functions[k]
        if not rec["hot"]:
            if rec["cold_ok"] is not None:
                used_escapes.append(k)
                continue
            if rec["boundary"] or rec["display"] in \
                    an.boundary_names or \
                    rec["display"].split("::")[-1] in \
                    an.boundary_names:
                continue
        scannable.append(k)
        for callee, _, _ in rec["calls"]:
            for ck in resolve(k, callee):
                if ck not in visited:
                    visited.add(ck)
                    parent[ck] = k
                    dq.append(ck)

    def chain(k):
        out = [k]
        while out[-1] in parent:
            out.append(parent[out[-1]])
        return [an.functions[x]["display"] for x in reversed(out)]

    findings = list(an.findings)
    for k in scannable:
        rec = an.functions[k]
        for rule, path, line, what in rec["hits"]:
            ch = chain(k)
            via = " -> ".join(ch)
            findings.append({
                "path": path, "line": line, "rule": rule,
                "message": f"{what} in '{rec['display']}', reachable "
                           f"from hot root '{ch[0]}' (chain: {via})",
                "chain": ch})
    findings.sort(key=lambda f: (f["path"], f["line"], f["rule"]))
    return findings, roots, visited, scannable, used_escapes


def audit(files, root, backend="lex"):
    an = Analysis()
    for path in files:
        rel = os.path.relpath(path, root) if root else path
        scan_file(path, rel, an)
    if backend != "lex":
        ci = try_libclang()
        if ci is not None:
            src_dir = os.path.join(root, "src") if root else "."
            for path in files:
                rel = os.path.relpath(path, root) if root else path
                try:
                    libclang_edges(ci, path, rel, src_dir, an)
                except Exception:
                    pass  # AST refinement is best-effort
    findings, roots, visited, scannable, used = propagate(an)
    summary = {
        "roots": sorted(an.functions[k]["display"] for k in roots),
        "reachable": len(visited),
        "scanned": len(scannable),
        "cold_ok": an.cold_escapes,
        "boundaries": an.boundary_decls,
        "sbo_sites": an.sbo_sites,
    }
    return findings, summary, an


# --- self-test ---------------------------------------------------------

# Seeded hot-path alloc with a decoy longer path: the finding must be
# reported through the *short* chain (root -> leakyHelper), proving
# chains are minimised, mirroring jetmc's minimised counterexamples.
SELFTEST_HOT_ALLOC = """\
#include "core/hot_annotations.hh"
void sink(int *p);
int *leakyHelper() { int *p = new int[16]; return p; }
void middle() { sink(leakyHelper()); }
JETSIM_HOT void dispatchRoot() { middle(); sink(leakyHelper()); }
"""

SELFTEST_HOT_LOCK = """\
#include "core/hot_annotations.hh"
#include "core/mutex.hh"
jetsim::core::Mutex stats_mu_;
void bumpStat() { jetsim::core::LockGuard g(stats_mu_); }
JETSIM_HOT void recordRoot() { bumpStat(); }
"""

SELFTEST_HOT_THROW = """\
#include "core/hot_annotations.hh"
int parseTag(int v) { if (v < 0) throw v; return v; }
JETSIM_HOT int popRoot(int v) { return parseTag(v); }
"""

# The same alloc shape with the sanctioned escape: the helper is a
# deliberate slow path, so the tree must audit clean and the escape
# must be recorded with its reason.
SELFTEST_COLD_OK_QUIET = """\
#include "core/hot_annotations.hh"
JETSIM_COLD_OK("slab growth: amortized, startup-dominated")
int *growSlab() { return new int[64]; }
JETSIM_HOT void allocRoot(bool need) { if (need) growSlab(); }
"""

SELFTEST_BOUNDARY_QUIET = """\
#include "core/hot_annotations.hh"
JETSIM_HOT_BOUNDARY void reportViolation(int v) { throw v; }
JETSIM_HOT void checkRoot(int v) { if (v < 0) reportViolation(v); }
"""

SELFTEST_SPIN = """\
#include "core/hot_annotations.hh"
#include <atomic>
JETSIM_HOT void casRoot(std::atomic<int> &t)
{
    int v = t.load(std::memory_order_relaxed);
    while (!t.compare_exchange_weak(v, v + 1)) {
    }
}
"""

SELFTEST_SPIN_ALLOWED = """\
#include "core/hot_annotations.hh"
#include <atomic>
JETSIM_HOT void casRoot(std::atomic<int> &t)
{
    int v = t.load(std::memory_order_relaxed);
    // jethot: allow(hot-spin) bounded: one lap, producers never park
    while (!t.compare_exchange_weak(v, v + 1)) {
    }
}
"""

SELFTEST_SBO = """\
#include "core/hot_annotations.hh"
struct Q { void noteSboMiss(); };
void submitCovered(Q &q, bool heap)
{
    if (heap)
        JETSIM_COLD_OK("SBO miss: counted, asserted zero in bench")
        q.noteSboMiss();
}
void submitUncovered(Q &q, bool heap)
{
    if (heap)
        q.noteSboMiss();
}
"""


def selftest():
    import tempfile
    ok = True

    def run(name, src):
        p = os.path.join(td, name)
        with open(p, "w", encoding="utf-8") as f:
            f.write(src)
        return audit([p], td)

    def fail(msg):
        nonlocal ok
        print(f"jethot selftest: FAILED — {msg}")
        ok = False

    with tempfile.TemporaryDirectory() as td:
        for name, src, rule, offender in [
                ("hot_alloc.cc", SELFTEST_HOT_ALLOC, "hot-alloc",
                 "leakyHelper"),
                ("hot_lock.cc", SELFTEST_HOT_LOCK, "hot-lock",
                 "bumpStat"),
                ("hot_throw.cc", SELFTEST_HOT_THROW, "hot-throw",
                 "parseTag")]:
            findings, _, _ = run(name, src)
            hits = [f for f in findings if f["rule"] == rule]
            if not hits:
                fail(f"seeded {rule} in {name} not found")
                continue
            ch = hits[0]["chain"]
            if len(ch) != 2 or ch[-1] != offender:
                fail(f"{name}: chain not minimised: {ch} "
                     f"(want [<root>, {offender}])")
        findings, summ, _ = run("cold_ok.cc", SELFTEST_COLD_OK_QUIET)
        if findings:
            fail(f"COLD_OK escape still flagged: {findings}")
        if not any(e["scope"] == "function" and "slab" in e["why"]
                   for e in summ["cold_ok"]):
            fail(f"COLD_OK escape not recorded: {summ['cold_ok']}")
        findings, summ, _ = run("boundary.cc",
                                SELFTEST_BOUNDARY_QUIET)
        if findings:
            fail(f"HOT_BOUNDARY body still scanned: {findings}")
        findings, _, _ = run("spin.cc", SELFTEST_SPIN)
        if not any(f["rule"] == "hot-spin" for f in findings):
            fail("seeded CAS spin loop not found")
        findings, _, _ = run("spin_ok.cc", SELFTEST_SPIN_ALLOWED)
        if any(f["rule"] == "hot-spin" for f in findings):
            fail(f"allow(hot-spin) not honored: {findings}")
        findings, summ, _ = run("sbo.cc", SELFTEST_SBO)
        sbo = [f for f in findings
               if f["rule"] == "unguarded-sbo-fallback"]
        if len(sbo) != 1:
            fail(f"want exactly 1 unguarded-sbo-fallback, "
                 f"got {sbo}")
        if len(summ["sbo_sites"]) != 2 or \
                sum(s["covered"] for s in summ["sbo_sites"]) != 1:
            fail(f"sbo site ledger wrong: {summ['sbo_sites']}")
    if ok:
        print("jethot selftest: seeded hot-path alloc/lock/throw "
              "each found with a minimised 2-hop chain; CAS spin "
              "flagged and allow()-whitelistable; JETSIM_COLD_OK "
              "and JETSIM_HOT_BOUNDARY stop traversal with the "
              "escape recorded; uncovered noteSboMiss site flagged, "
              "covered site ledgered")
    return ok


def main():
    ap = argparse.ArgumentParser(
        description="hot-path discipline audit for jetsim src/")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--json", action="store_true",
                    help="emit findings + reachability summary as "
                         "JSON on stdout")
    ap.add_argument("--sarif", action="store_true",
                    help="emit findings as a SARIF 2.1.0 log")
    ap.add_argument("--dot", action="store_true",
                    help="emit the hot-reachability call graph in "
                         "DOT form")
    ap.add_argument("--selftest", action="store_true",
                    help="audit the embedded seeded-violation "
                         "fixtures")
    ap.add_argument("--backend", default="auto",
                    choices=["auto", "lex", "libclang"],
                    help="call-edge backend (libclang augments the "
                         "lexical graph when the bindings import)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule table and exit")
    ap.add_argument("paths", nargs="*",
                    help="files/dirs to audit (default: <root>/src)")
    args = ap.parse_args()

    if args.list_rules:
        for rule, desc in RULES:
            print(f"{rule:22} {desc}")
        return 0

    if args.selftest:
        return 0 if selftest() else 1

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    targets = args.paths or [os.path.join(root, "src")]
    files = cpplex.collect_files(targets)
    if not files:
        print("jethot: no input files", file=sys.stderr)
        return 2

    if args.backend == "libclang" and try_libclang() is None:
        print("jethot: libclang Python bindings not importable; "
              "install them or use --backend=lex", file=sys.stderr)
        return 2

    findings, summ, an = audit(files, root, backend=args.backend)

    if args.dot:
        print("digraph hot_reach {")
        print("  rankdir=LR;")
        flagged = {f["chain"][-1] for f in findings if f["chain"]}
        reach = {k for k, r in an.functions.items()
                 if r["hot"]}
        # recompute reachable set for rendering
        _, roots, visited, scannable, _ = propagate(an)
        for k in sorted(visited):
            r = an.functions[k]
            attr = ""
            if r["hot"]:
                attr = " [shape=doubleoctagon]"
            if r["cold_ok"] is not None:
                attr = ' [style=dashed, color=green, label="%s\\n' \
                       'COLD_OK"]' % r["display"]
            elif r["boundary"]:
                attr = " [style=dashed, color=gray]"
            elif r["display"] in flagged:
                attr = " [color=red]"
            print(f'  "{r["display"]}"{attr};')
        seen = set()
        resolve = build_resolver(an)
        for k in sorted(visited):
            for callee, _, _ in an.functions[k]["calls"]:
                for ck in resolve(k, callee):
                    if ck in visited and (k, ck) not in seen:
                        seen.add((k, ck))
                        print(f'  "{an.functions[k]["display"]}" -> '
                              f'"{an.functions[ck]["display"]}";')
        print("}")
        return 0

    if args.sarif:
        cpplex.print_sarif("jethot", RULES, findings, root)
        return 1 if findings else 0

    if args.json:
        print(json.dumps({"schema_version": SCHEMA_VERSION,
                          "tool": "jethot",
                          "findings": findings,
                          "files": len(files),
                          **summ}, indent=2))
        return 1 if findings else 0

    for f in findings:
        print(f"{f['path']}:{f['line']}: [{f['rule']}] "
              f"{f['message']}")
    covered = sum(s["covered"] for s in summ["sbo_sites"])
    if findings:
        print(f"jethot: {len(findings)} finding(s) in {len(files)} "
              f"files ({len(summ['roots'])} roots, "
              f"{summ['reachable']} reachable)")
        return 1
    print(f"jethot: {len(files)} files clean — "
          f"{len(summ['roots'])} hot roots, {summ['reachable']} "
          f"reachable functions, {len(summ['cold_ok'])} sanctioned "
          f"cold escapes, {len(summ['boundaries'])} boundaries, "
          f"{covered}/{len(summ['sbo_sites'])} heap-fallback sites "
          f"covered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
