#!/usr/bin/env bash
# jetsim CI entry point: one script, three passes.
#
#   1. plain     - default build + full ctest suite, then the jetlint
#                  static pass (every zoo model at all precisions on
#                  every board, plus the shipped example configs; any
#                  error-severity finding fails CI) and the detlint
#                  determinism lint over src/
#   2. sanitized - ASan+UBSan (-Werror) build + full suite + the
#                  simcheck determinism replay
#   3. tidy      - clang-tidy over src/, tools/ and tests/ (skipped
#                  with a warning when clang-tidy is not installed)
#
# Pass 1 also runs a perf smoke (1c): the event-core microbenchmarks
# at short min-time — not for numbers (CI hosts are noisy) but so a
# perf-path assert/regression that only triggers at benchmark volume
# fails CI — plus the golden-digest runner tests, which prove the
# pooled event core still dispatches in the bit-identical order the
# committed digests were recorded from, the sharded fleet goldens
# (GOLDEN_fleet.json at shards 1, 4 and 16, including a 256-board
# hierarchical config), the sharded scaling smoke (>= 1.5x at 4
# shards; auto-skipped below 4 cores) and the sharded overhead gate
# (1000-board hierarchical fleet at shards=8/threads=1 must keep
# >= 0.75x the serial event rate; never skipped).
#
# Pass 1d is the bounded model check (jetmc): the seeded-deadlock
# self-test must find its counterexample and replay it, then small
# 2- and 3-process deployments are proved deadlock-free and
# digest-schedule-independent over every interleaving within the
# depth bound, with the DPOR reduction required to earn its keep
# (>= 10x fewer runs than the naive DFS on the 3-process config).
#
# Pass 1e is the static-bound soundness gate (jetbound): the zoo is
# simulated with --compare-sim and every measurement must land
# inside its statically derived interval (exit 1 on any violation);
# the proven-OOM cell must agree with the simulator; the capacity
# planner's prescreen must prune at least one cell of the shipped
# acceptance grid; and README's rule table must mention every rule
# ID that jetlint --list-rules emits.
#
# Pass 1f is the concurrency-discipline gate (jetrace): src/ must
# carry zero unannotated mutable globals/statics, no raw std::mutex
# outside core/mutex.hh, and an acyclic static lock-order graph; the
# auditor's own selftest must agree with the deadlock counterexample
# jetmc produced in pass 1d (static cycle <-> dynamic deadlock on the
# same inverted two-lock discipline). When a clang++ is installed the
# whole tree is additionally rebuilt with -DJETSIM_THREAD_SAFETY=ON
# (-Wthread-safety -Werror=thread-safety), making every unguarded
# access to a JETSIM_GUARDED_BY field a hard compile error; without
# clang the build step is skipped with a warning (the jetrace audit
# above still enforces the same contracts structurally).
#
# Usage: tools/ci.sh [--tsan] [--skip-plain] [--skip-sanitized]
#                    [--skip-tidy]
#
# --tsan swaps the sanitized pass to ThreadSanitizer and is the
# gate for the parallel sweep runner (core::Runner) and the sharded
# event core (sim::ShardedEngine): the pass rings the
# runner_stress_tests binary (oversubscribed work-stealing pool
# plus the global-state regression tests), the sharded_stress_tests
# binary (sense-reversing barriers + the lock-free MPSC inbox rings
# under oversubscription) and the simcheck replay through the
# parallel path, so data races in the concurrent executors fail CI
# rather than lurk.

set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
san_flavor=address
run_plain=1
run_san=1
run_tidy=1

for arg in "$@"; do
    case "$arg" in
      --tsan) san_flavor=thread ;;
      --skip-plain) run_plain=0 ;;
      --skip-sanitized) run_san=0 ;;
      --skip-tidy) run_tidy=0 ;;
      *) echo "ci.sh: unknown flag '$arg'" >&2; exit 2 ;;
    esac
done

banner() { printf '\n=== %s ===\n' "$*"; }

build_and_test() {
    local dir="$1"; shift
    cmake -B "$dir" -S "$repo" "$@" >/dev/null
    cmake --build "$dir" -j "$jobs"
    ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

if [ "$run_plain" = 1 ]; then
    banner "pass 1: plain build + tests"
    build_and_test "$repo/build-ci/plain"
    banner "pass 1b: jetlint static analysis"
    jetlint="$repo/build-ci/plain/tools/jetlint"
    "$jetlint" --zoo --device=all --precision=all | tail -1
    "$jetlint" --examples | tail -1
    # Source-level determinism lint: wall-clock / rand() / getenv /
    # unordered iteration must not enter simulation code.
    python3 "$repo/tools/detlint.py" | tail -1
    banner "pass 1c: perf smoke + golden digest check"
    # Short-min-time run of the event-core microbenchmarks: catches
    # perf-path asserts (pool recycling, SBO fallback, JetSan key
    # order) that only fire at benchmark volume. Numbers themselves
    # are not gated — CI hosts are too noisy.
    "$repo/build-ci/plain/bench/micro_sim" \
        --benchmark_min_time=0.05 \
        --benchmark_filter='BM_EventQueue.*|BM_SchedulerContention.*'
    # Steady-state schedule path must stay allocation-free: any
    # InlineFn capture outgrowing the inline buffer fails here.
    "$repo/build-ci/plain/bench/micro_sim" --assert-sbo
    # Golden digests: the pooled event core must dispatch in the
    # bit-identical order the committed serial digests encode, on
    # both boards and across runner thread counts.
    "$repo/build-ci/plain/tests/runner_tests" \
        --gtest_filter='BothBoards/RunnerGolden.*' \
        --gtest_brief=1
    # Sharded golden digests: the fleet suite (including the
    # 256-board hierarchical config) re-run at shards 1, 4 and 16
    # must hash to the committed serial digests — the sharded
    # engine's bit-identity gate (regenerate with --update only when
    # the cost model legitimately moves).
    "$repo/build-ci/plain/tools/simcheck" \
        --fleet-golden="$repo/GOLDEN_fleet.json"
    # Scaling smoke: the parallel epoch path must actually pay for
    # itself — >= 1.5x serial event rate at shards=4/threads=4. The
    # digest is always compared; simcheck skips the speedup gate by
    # itself on hosts with < 4 cores (printing the reason and the
    # detected core count), where the comparison would measure
    # contention, not scaling.
    "$repo/build-ci/plain/tools/simcheck" --fleet-scaling=1.5
    # Overhead gate: the epoch protocol with parallelism removed —
    # a 1000-board hierarchical fleet at shards=8 on ONE thread must
    # keep >= 0.75x of the serial event rate (tournament reduction,
    # adaptive epoch batching and the lock-free inbox are what make
    # this hold; the mutex-inbox engine sat at 0.40x). Runs on any
    # host — this gate never self-skips.
    "$repo/build-ci/plain/tools/simcheck" --fleet-overhead=0.75
    banner "pass 1d: bounded model check (jetmc)"
    jetmc="$repo/build-ci/plain/tools/jetmc"
    ce_dir="$repo/build-ci/plain/jetmc-ce"
    mkdir -p "$ce_dir"
    # Checker checks itself: the seeded deadlock must be found,
    # minimised and replayed before any deployment verdict counts.
    "$jetmc" --selftest --ce-dir="$ce_dir"
    "$repo/build-ci/plain/tools/simcheck" \
        --mc-replay="$ce_dir/jetmc_ce_selftest.json"
    # 2-process deployment on orin-nano: exhaustive within depth.
    "$jetmc" --device=orin-nano --model=resnet50 --procs=2 \
        --max-ecs=2 --depth=24 --ce-dir="$ce_dir" | tail -1
    # 3-process deployment on nano: the DPOR reduction must beat the
    # naive DFS by >= 10x or the pass fails.
    "$jetmc" --device=nano --model=yolov8n --procs=3 \
        --max-ecs=2 --depth=20 --min-reduction=10 \
        --ce-dir="$ce_dir" | tail -2
    banner "pass 1e: static-bound soundness (jetbound)"
    jetbound="$repo/build-ci/plain/tools/jetbound"
    # Hard soundness gate: simulate the zoo and require every
    # measurement inside its static interval (exit 1 otherwise).
    "$jetbound" --zoo --device=orin-nano --procs=3 \
        --compare-sim | tail -1
    # The cell the paper's Nano reboot anecdote maps to: the static
    # memory lower bound proves the deployment must fail, and the
    # simulator must agree.
    "$jetbound" --model=fcn_resnet50 --device=nano --procs=4 \
        --compare-sim | tail -1
    # Pruning-effectiveness gate: the shipped acceptance grid must
    # have at least one provably-prunable cell (it has 52).
    "$repo/build-ci/plain/examples/capacity_planner" \
        --prescreen --min-pruned=1 nano fcn_resnet50 100 15 \
        2>/dev/null | tail -3
    # README's rule table is generated from --list-rules; drifting
    # by hand-editing fails here.
    "$jetlint" --list-rules | awk 'NR>1 {print $1}' |
        while read -r rule; do
            grep -q "| $rule |" "$repo/README.md" || {
                echo "ci.sh: rule $rule missing from README.md" \
                     "(regenerate: jetlint --list-rules --markdown)" >&2
                exit 1
            }
        done
    banner "pass 1f: concurrency discipline (jetrace)"
    # Zero findings over src/ (unannotated shared state, raw locks,
    # unknown capabilities) AND an acyclic lock-order graph; the
    # acyclic flag is asserted explicitly so a future rule change
    # that stops treating cycles as findings cannot soften the gate.
    python3 "$repo/tools/jetrace.py" --json > \
        "$repo/build-ci/plain/jetrace.json"
    python3 - "$repo/build-ci/plain/jetrace.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["findings"] == [], doc["findings"]
assert doc["lock_graph"]["acyclic"], doc["lock_graph"]
print("jetrace: src clean; lock graph acyclic "
      f"({len(doc['lock_graph']['nodes'])} capabilities, "
      f"{doc['inventory']['guarded_fields']} guarded fields, "
      f"{doc['inventory']['confined']} confined)")
EOF
    # Static/dynamic agreement: jetrace's cycle verdict on the
    # two-lock fixtures must match the deadlock counterexample jetmc
    # minimised in pass 1d.
    python3 "$repo/tools/jetrace.py" --selftest \
        --jetmc-ce="$ce_dir/jetmc_ce_selftest.json"
    # Compiler-enforced contracts where a clang++ exists: the probe
    # pair in cmake/thread_safety_probe.cc first proves the analysis
    # is live, then the whole tree must build warning-free under
    # -Wthread-safety -Werror=thread-safety.
    if command -v clang++ >/dev/null 2>&1; then
        cmake -B "$repo/build-ci/tsafety" -S "$repo" \
            -DCMAKE_CXX_COMPILER=clang++ \
            -DJETSIM_THREAD_SAFETY=ON >/dev/null
        cmake --build "$repo/build-ci/tsafety" -j "$jobs"
    else
        echo "ci.sh: warning: clang++ not installed;" \
             "skipping the -Wthread-safety build (jetrace audit" \
             "above still gates the same contracts)" >&2
    fi

    banner "pass 1g: hot-path discipline (jethot)"
    # The analyzer must first find its own seeded violations
    # (hot-path alloc, lock, throw — each minimised to a 2-hop
    # chain) before its verdict on src/ means anything.
    python3 "$repo/tools/jethot.py" --selftest
    # Zero findings over src/: nothing reachable from a hot root
    # allocates, locks, throws, blocks, or reads the environment
    # outside an explicit JETSIM_COLD_OK / boundary escape — and
    # every runtime heap-fallback counter site (what micro_sim
    # --assert-sbo counts) is covered by a ledgered escape, so the
    # static escape set and the runtime SBO accounting name the
    # same sites.
    python3 "$repo/tools/jethot.py" --json > \
        "$repo/build-ci/plain/jethot.json"
    python3 - "$repo/build-ci/plain/jethot.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["findings"] == [], doc["findings"]
sites = doc["sbo_sites"]
assert len(sites) >= 3 and all(s["covered"] for s in sites), sites
print(f"jethot: src clean; {len(doc['roots'])} hot roots, "
      f"{doc['reachable']} reachable, "
      f"{len(doc['cold_ok'])} sanctioned cold escapes, "
      f"{len(sites)}/{len(sites)} heap-fallback sites covered")
EOF
fi

if [ "$run_san" = 1 ]; then
    banner "pass 2: sanitized build ($san_flavor) + tests"
    build_and_test "$repo/build-ci/$san_flavor" \
        -DJETSIM_SANITIZE="$san_flavor"
    banner "pass 2b: determinism replay (simcheck, parallel path)"
    "$repo/build-ci/$san_flavor/tools/simcheck" \
        --duration 0.3 --warmup 0.1 --seeds 1,2,3 --threads 4
    banner "pass 2c: runner + sharded concurrency stress ($san_flavor)"
    # ctest already ran these binaries once; run them again explicitly
    # with the pool oversubscribed well past the host core count so
    # the sanitizer sees maximum interleaving.
    JETSIM_THREADS=16 \
        "$repo/build-ci/$san_flavor/tests/runner_stress_tests"
    # The sharded sense-reversing barriers and lock-free inbox rings
    # under the same treatment: with --tsan this is the pass that
    # turns any data race in ShardedEngine into a CI failure.
    "$repo/build-ci/$san_flavor/tests/sharded_stress_tests"
fi

if [ "$run_tidy" = 1 ]; then
    banner "pass 3: clang-tidy"
    if command -v clang-tidy >/dev/null 2>&1; then
        # Reuse the plain tree's compile_commands.json.
        cdb="$repo/build-ci/plain"
        [ -f "$cdb/compile_commands.json" ] ||
            cmake -B "$cdb" -S "$repo" >/dev/null
        mapfile -t sources < <(find "$repo/src" "$repo/tools" \
                                    "$repo/tests" \
                                    -name '*.cc' -o -name '*.cpp')
        clang-tidy -p "$cdb" --quiet "${sources[@]}"
    else
        echo "ci.sh: clang-tidy not installed; skipping pass 3" >&2
    fi
fi

banner "ci.sh: all requested passes completed"
