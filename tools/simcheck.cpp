/**
 * @file
 * simcheck: the JetSan replay harness.
 *
 * Runs one experiment spec several times from scratch and compares
 * the bit-exact result digests — the executable form of the
 * determinism invariant (same seed ⇒ identical prof metrics). Any
 * divergence is reported as a JetSan determinism violation and the
 * tool exits non-zero, making it suitable as a CI gate
 * (tools/ci.sh runs it after the sanitized test pass).
 *
 * Before the replays it also checks the plan round trip: the spec's
 * engine is serialized, deserialized and "run" through the
 * deterministic kernel cost model; the plan text and the timing
 * digest must be bit-identical on both sides, so a plan file can be
 * built once and deployed many times without drift.
 *
 *   simcheck --model=yolov8n --precision=int8 --procs=2 --runs=3
 *   simcheck --seeds=1,2,3        # distinct seeds must all differ? no:
 *                                 # each seed is replayed --runs times
 *
 * With --mc-replay=<file> it instead replays a jetmc counterexample:
 * the embedded configuration and choice script are reconstructed and
 * the recorded failure must reproduce exactly. This keeps the
 * model-checker honest — a CE that does not replay is a jetmc bug.
 *
 * With --fleet-replay=<file> it re-runs a fleet spec dumped by the
 * sharded differential battery (tests/sim/sharded_diff_test.cc):
 * serial and sharded digests must be bit-identical, making a fuzzer
 * failure reproducible from a single flat key=value file.
 *
 * With --fleet-golden=<path> it runs the committed fleet golden
 * suite (including a 256-board hierarchical config): sharded digests
 * at shards 1, 4 and 16 must equal the serial digests recorded in the
 * file (CI pass 1c); --update regenerates it.
 *
 * With --fleet-scaling=<ratio> it times a large fleet serially and at
 * shards=4/threads=4 and requires the parallel epoch path to clear
 * <ratio>x the serial event rate (and, as always, the identical
 * digest). On hosts with fewer than 4 cores the comparison is
 * meaningless — the gate prints the skip reason with the detected
 * core count (also in --json) and passes.
 *
 * With --fleet-overhead=<ratio> it times a hierarchical fleet at
 * shards=8 on ONE thread against shards=1: pure epoch-protocol
 * overhead, no parallelism to hide behind. The sharded run must keep
 * >= <ratio>x of the serial event rate (CI pass 1c gates at 0.75).
 * Unlike --fleet-scaling this holds on any host, 1 core included.
 */

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "argparse.hh"
#include "check/digest.hh"
#include "check/reporter.hh"
#include "core/digest.hh"
#include "core/fleet.hh"
#include "core/profiler.hh"
#include "core/runner.hh"
#include "gpu/cost_model.hh"
#include "mc/ce.hh"
#include "models/zoo.hh"
#include "sim/logging.hh"
#include "trt/builder.hh"

using namespace jetsim;

namespace {

std::vector<std::uint64_t>
parseSeeds(const std::string &csv)
{
    std::vector<std::uint64_t> seeds;
    std::string cur;
    for (const char c : csv + ",") {
        if (c == ',') {
            if (!cur.empty()) {
                for (const char d : cur) {
                    if (!std::isdigit(static_cast<unsigned char>(d)))
                        sim::fatal("--seeds: '%s' is not a number",
                                   cur.c_str());
                }
                seeds.push_back(std::stoull(cur));
            }
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (seeds.empty())
        sim::fatal("--seeds: no seeds given");
    return seeds;
}

/** Digest of a deterministic dry run: every kernel through the cost
 * model at full frequency with the jitter source disabled. */
std::uint64_t
dryRunDigest(const trt::Engine &e, const soc::DeviceSpec &spec)
{
    const gpu::KernelCostModel cost(spec);
    check::Digest d;
    for (const auto &k : e.kernels()) {
        const auto t = cost.timing(k, 1.0, nullptr);
        d.add(k.name);
        d.add(static_cast<std::int64_t>(t.duration));
        d.add(t.sm_active);
        d.add(t.issue_slot);
        d.add(t.tc_util);
        d.add(t.bw_util);
        d.add(t.compute_frac);
    }
    return d.value();
}

/**
 * serialize → deserialize → run must be invisible: identical plan
 * text on re-serialization and an identical dry-run timing digest.
 * Returns false (and reports Determinism violations) on divergence.
 */
bool
planRoundTripCheck(const core::ExperimentSpec &spec)
{
    const auto dev = soc::deviceByName(spec.device);
    trt::Builder builder(dev);
    trt::BuilderConfig cfg;
    cfg.precision = spec.precision;
    cfg.batch = spec.batch;
    const auto built =
        builder.build(models::modelByName(spec.model), cfg);

    const auto plan = built.serialize();
    const auto restored = trt::Engine::deserialize(plan);
    auto &rep = check::Reporter::instance();

    bool ok = true;
    if (restored.serialize() != plan) {
        ok = false;
        rep.report(check::Severity::Error,
                   check::Invariant::Determinism, "tools.simcheck",
                   check::kTimeUnknown,
                   "%s plan text not stable across a "
                   "serialize/deserialize round trip",
                   spec.model.c_str());
    }

    const auto before = dryRunDigest(built, dev);
    const auto after = dryRunDigest(restored, dev);
    if (before != after) {
        ok = false;
        rep.report(check::Severity::Error,
                   check::Invariant::Determinism, "tools.simcheck",
                   check::kTimeUnknown,
                   "%s dry-run digest %016llx != %016llx after plan "
                   "round trip",
                   spec.model.c_str(),
                   static_cast<unsigned long long>(before),
                   static_cast<unsigned long long>(after));
    }

    std::printf("plan round trip: %s (digest %016llx, %zu kernels)\n",
                ok ? "ok" : "DIVERGED",
                static_cast<unsigned long long>(before),
                built.kernels().size());
    return ok;
}

/**
 * Replay a jetmc counterexample file: reconstruct the model from the
 * embedded config, run the recorded choice script and require the
 * recorded failure kind to reproduce.
 */
int
mcReplay(const std::string &path)
{
    mc::CounterExample ce;
    std::string err;
    if (!mc::readCe(path, ce, err)) {
        std::fprintf(stderr, "simcheck: %s\n", err.c_str());
        return 2;
    }
    std::printf("mc-replay: model %s, failure '%s', %zu choices\n",
                ce.model.c_str(), ce.what.c_str(), ce.script.size());
    if (!ce.detail.empty())
        std::printf("mc-replay: recorded diagnosis: %s\n",
                    ce.detail.c_str());
    const std::string diag = mc::replayCe(ce);
    if (!diag.empty()) {
        std::fprintf(stderr,
                     "simcheck: counterexample did NOT reproduce: "
                     "%s\n",
                     diag.c_str());
        return 1;
    }
    std::printf("simcheck: counterexample reproduces the recorded "
                "'%s' failure\n",
                ce.what.c_str());
    return 0;
}

/**
 * Re-run a replay spec dumped by the differential battery: the serial
 * digest, the file's sharded configuration, and a repeat of the
 * sharded run must all agree bit for bit.
 */
int
fleetReplay(const std::string &path)
{
    core::FleetSpec spec;
    core::FleetOptions opts;
    std::string err;
    if (!core::readFleetReplay(path, spec, opts, err)) {
        std::fprintf(stderr, "simcheck: %s\n", err.c_str());
        return 2;
    }
    std::printf("fleet-replay: %s\n", spec.label().c_str());
    std::printf("fleet-replay: shards=%d threads=%d lookahead=%lld\n",
                opts.shards, opts.threads,
                static_cast<long long>(opts.lookahead));

    const auto serial =
        core::resultDigest(core::runFleet(spec, {}));
    const auto sharded =
        core::resultDigest(core::runFleet(spec, opts));
    const auto again =
        core::resultDigest(core::runFleet(spec, opts));

    std::printf("fleet-replay: serial %016llx, sharded %016llx, "
                "repeat %016llx\n",
                static_cast<unsigned long long>(serial),
                static_cast<unsigned long long>(sharded),
                static_cast<unsigned long long>(again));
    if (serial != sharded || sharded != again) {
        std::fprintf(stderr,
                     "simcheck: fleet replay DIVERGED "
                     "(serial-vs-sharded: %s, repeat: %s)\n",
                     serial == sharded ? "ok" : "MISMATCH",
                     sharded == again ? "ok" : "MISMATCH");
        return 1;
    }
    std::printf("simcheck: fleet replay bit-identical across serial, "
                "sharded and repeated runs\n");
    return 0;
}

/** The committed golden suite: small, fast, covers both boards, a
 * heterogeneous mix and local+balancer traffic. Append-only — edits
 * here invalidate GOLDEN_fleet.json (regenerate with --update). */
std::vector<core::FleetSpec>
goldenSuite()
{
    std::vector<core::FleetSpec> suite;
    {
        core::FleetSpec s;
        for (int d = 0; d < 4; ++d)
            s.devices.push_back(
                {"orin-nano", "resnet50", soc::Precision::Int8, 1, 0.0});
        s.balancer_rate = 300.0;
        s.warmup = sim::msec(15);
        s.duration = sim::msec(120);
        s.seed = 7;
        suite.push_back(std::move(s));
    }
    {
        core::FleetSpec s;
        for (int d = 0; d < 4; ++d)
            s.devices.push_back(
                {"nano", "resnet18", soc::Precision::Int8, 1, 0.0});
        s.balancer_rate = 200.0;
        s.warmup = sim::msec(15);
        s.duration = sim::msec(120);
        s.seed = 11;
        suite.push_back(std::move(s));
    }
    {
        core::FleetSpec s;
        s.devices.push_back(
            {"orin-nano", "yolov8n", soc::Precision::Fp16, 2, 40.0});
        s.devices.push_back(
            {"nano", "mobilenet_v2", soc::Precision::Fp16, 1, 0.0});
        s.devices.push_back(
            {"orin-nano", "resnet50", soc::Precision::Int8, 1, 0.0});
        s.devices.push_back(
            {"nano", "resnet18", soc::Precision::Int8, 1, 25.0});
        s.balancer_rate = 150.0;
        s.warmup = sim::msec(15);
        s.duration = sim::msec(120);
        s.seed = 13;
        suite.push_back(std::move(s));
    }
    {
        // Hierarchical wide fleet: 256 boards through the two-hop
        // root -> sub-balancer dispatch, wide enough that the
        // balancer-reserved shard map actually reserves shard 0 at
        // every matrix point.
        core::FleetSpec s;
        for (int d = 0; d < 256; ++d)
            s.devices.push_back({"orin-nano", "mobilenet_v2",
                                 soc::Precision::Int8, 1, 0.0});
        s.balancer_rate = 25.0 * 256;
        s.hierarchical = true;
        s.warmup = sim::msec(4);
        s.duration = sim::msec(30);
        s.seed = 23;
        suite.push_back(std::move(s));
    }
    return suite;
}

/** Minimal scanner for the golden file's flat JSON (mirrors the
 * hand-rolled style of mc/ce.cc): "label": "...", "digest": "...". */
std::map<std::string, std::string>
readGolden(const std::string &path, bool &ok)
{
    std::map<std::string, std::string> out;
    std::ifstream in(path);
    ok = static_cast<bool>(in);
    if (!ok)
        return out;
    std::string line, label;
    while (std::getline(in, line)) {
        const auto grab = [&line](const char *key) -> std::string {
            const auto k = line.find(key);
            if (k == std::string::npos)
                return "";
            const auto q1 = line.find('"', k + std::strlen(key));
            const auto q2 = line.find('"', q1 + 1);
            if (q1 == std::string::npos || q2 == std::string::npos)
                return "";
            return line.substr(q1 + 1, q2 - q1 - 1);
        };
        const auto l = grab("\"label\":");
        if (!l.empty())
            label = l;
        const auto d = grab("\"digest\":");
        if (!d.empty() && !label.empty()) {
            out[label] = d;
            label.clear();
        }
    }
    return out;
}

int
fleetGolden(const std::string &path, bool update)
{
    const auto suite = goldenSuite();
    char hex[32];

    if (update) {
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "simcheck: cannot write %s\n",
                         path.c_str());
            return 2;
        }
        out << "{\n  \"fleet_goldens\": [\n";
        for (std::size_t i = 0; i < suite.size(); ++i) {
            const auto digest =
                core::resultDigest(core::runFleet(suite[i], {}));
            std::snprintf(hex, sizeof(hex), "%016llx",
                          static_cast<unsigned long long>(digest));
            out << "    {\"label\": \"" << suite[i].label()
                << "\", \"digest\": \"" << hex << "\"}"
                << (i + 1 < suite.size() ? "," : "") << "\n";
            std::printf("golden: %s -> %s\n",
                        suite[i].label().c_str(), hex);
        }
        out << "  ]\n}\n";
        std::printf("simcheck: wrote %zu fleet goldens to %s\n",
                    suite.size(), path.c_str());
        return 0;
    }

    bool opened = false;
    const auto committed = readGolden(path, opened);
    if (!opened) {
        std::fprintf(stderr, "simcheck: cannot read %s\n",
                     path.c_str());
        return 2;
    }
    int failures = 0;
    for (const auto &spec : suite) {
        const auto it = committed.find(spec.label());
        if (it == committed.end()) {
            std::fprintf(stderr,
                         "simcheck: no committed digest for '%s' "
                         "(regenerate with --update)\n",
                         spec.label().c_str());
            ++failures;
            continue;
        }
        bool cell_ok = true;
        for (const int shards : {1, 4, 16}) {
            core::FleetOptions o;
            o.shards = shards;
            o.threads = shards > 1 ? 2 : 1;
            const auto digest =
                core::resultDigest(core::runFleet(spec, o));
            std::snprintf(hex, sizeof(hex), "%016llx",
                          static_cast<unsigned long long>(digest));
            if (it->second != hex) {
                cell_ok = false;
                std::fprintf(stderr,
                             "simcheck: '%s' shards=%d digest %s != "
                             "committed %s\n",
                             spec.label().c_str(), shards, hex,
                             it->second.c_str());
            }
        }
        std::printf("golden: %s [shards 1,4,16] %s\n",
                    spec.label().c_str(),
                    cell_ok ? "ok" : "DIVERGED");
        if (!cell_ok)
            ++failures;
    }
    if (failures) {
        std::fprintf(stderr,
                     "simcheck: %d fleet golden(s) diverged\n",
                     failures);
        return 1;
    }
    std::printf("simcheck: all %zu fleet goldens bit-identical at "
                "shards 1, 4 and 16\n",
                suite.size());
    return 0;
}

/**
 * Scaling smoke for CI pass 1c: a fleet wide enough to keep four
 * shards busy, timed serial vs shards=4/threads=4. Gates on both the
 * digest (always) and the speedup (only on >= 4-core hosts).
 */
int
fleetScaling(double min_ratio, bool json)
{
    const unsigned cores = std::thread::hardware_concurrency();

    // Big enough that the serial run takes a schedulable slice of
    // wall-clock (~10^5 events): timing two sub-10ms runs would gate
    // on noise, not on the epoch path.
    core::FleetSpec spec;
    for (int d = 0; d < 8; ++d)
        spec.devices.push_back({d % 2 ? "nano" : "orin-nano",
                                d % 4 < 2 ? "resnet18" : "mobilenet_v2",
                                soc::Precision::Int8, 1, 120.0});
    spec.balancer_rate = 800.0;
    spec.warmup = sim::msec(20);
    spec.duration = sim::msec(2000);
    spec.seed = 21;

    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    const auto serial = core::runFleet(spec, {});
    const auto t1 = clock::now();
    core::FleetOptions o;
    o.shards = 4;
    o.threads = 4;
    const auto sharded = core::runFleet(spec, o);
    const auto t2 = clock::now();

    const bool digest_match =
        core::resultDigest(serial) == core::resultDigest(sharded);
    const auto secs = [](clock::duration d) {
        return std::chrono::duration<double>(d).count();
    };
    const double serial_s = secs(t1 - t0);
    const double sharded_s = secs(t2 - t1);
    const double speedup = sharded_s > 0.0 ? serial_s / sharded_s : 0.0;
    const bool skipped = cores < 4;
    char skip_reason[96] = "";
    if (skipped)
        std::snprintf(skip_reason, sizeof(skip_reason),
                      "host has %u core(s) < 4: the comparison would "
                      "measure contention, not scaling",
                      cores);
    const bool gate_ok = skipped || speedup >= min_ratio;
    if (json) {
        std::printf("{\"check\": \"fleet-scaling\", "
                    "\"events\": %llu, \"cores\": %u, "
                    "\"serial_s\": %.6f, \"sharded_s\": %.6f, "
                    "\"speedup\": %.3f, \"gate\": %.2f, "
                    "\"digest_match\": %s, \"skipped\": %s, "
                    "\"skip_reason\": \"%s\", \"pass\": %s}\n",
                    static_cast<unsigned long long>(serial.events),
                    cores, serial_s, sharded_s, speedup, min_ratio,
                    digest_match ? "true" : "false",
                    skipped ? "true" : "false", skip_reason,
                    digest_match && gate_ok ? "true" : "false");
        return digest_match && gate_ok ? 0 : 1;
    }
    if (!digest_match) {
        std::fprintf(stderr, "simcheck: scaling fleet DIVERGED "
                             "(serial vs shards=4)\n");
        return 1;
    }
    std::printf("fleet-scaling: %llu events; serial %.3fs, "
                "shards=4/threads=4 %.3fs, speedup %.2fx\n",
                static_cast<unsigned long long>(serial.events),
                serial_s, sharded_s, speedup);
    if (skipped) {
        std::printf("simcheck: speedup gate skipped: %s (digest "
                    "still checked)\n",
                    skip_reason);
        return 0;
    }
    if (speedup < min_ratio) {
        std::fprintf(stderr,
                     "simcheck: sharded speedup %.2fx below the "
                     "%.2fx gate on a %u-core host\n",
                     speedup, min_ratio, cores);
        return 1;
    }
    std::printf("simcheck: sharded scaling gate passed "
                "(%.2fx >= %.2fx on %u cores)\n",
                speedup, min_ratio, cores);
    return 0;
}

/**
 * Overhead gate for CI pass 1c: the epoch protocol itself — barrier,
 * reduction, message path — measured with parallelism taken away.
 * A 1000-board hierarchical fleet runs at shards=8 on ONE thread and
 * at shards=1; the ratio of event rates is pure per-epoch/per-message
 * constant cost. Host-independent (no idle cores required), so unlike
 * --fleet-scaling this gate never self-skips. Digests are compared at
 * both points; the ratio is the max over @c kReps reps of the
 * per-rep min times (noise-robust on shared hosts).
 */
int
fleetOverhead(double min_ratio, bool json)
{
    core::FleetSpec spec;
    for (int d = 0; d < 1000; ++d)
        spec.devices.push_back({"orin-nano", "mobilenet_v2",
                                soc::Precision::Int8, 1, 0.0});
    spec.balancer_rate = 25.0 * 1000;
    spec.hierarchical = true;
    spec.warmup = sim::msec(4);
    spec.duration = sim::msec(30);
    spec.seed = 23;

    using clock = std::chrono::steady_clock;
    const auto timeOnce = [&spec](int shards, std::uint64_t &digest,
                                  std::uint64_t &events) {
        core::FleetOptions o;
        o.shards = shards;
        o.threads = 1;
        const auto t0 = clock::now();
        const auto r = core::runFleet(spec, o);
        const auto t1 = clock::now();
        digest = core::resultDigest(r);
        events = r.events;
        return std::chrono::duration<double>(t1 - t0).count();
    };

    constexpr int kReps = 3;
    double serial_s = 1e300, sharded_s = 1e300, ratio = 0.0;
    std::uint64_t want = 0, got = 0, events = 0;
    bool digest_match = true;
    for (int r = 0; r < kReps; ++r) {
        std::uint64_t ev = 0;
        const double a = timeOnce(1, want, events);
        const double b = timeOnce(8, got, ev);
        digest_match = digest_match && want == got && ev == events;
        serial_s = std::min(serial_s, a);
        sharded_s = std::min(sharded_s, b);
        if (b > 0.0)
            ratio = std::max(ratio, a / b);
    }
    const bool gate_ok = digest_match && ratio >= min_ratio;
    if (json) {
        std::printf("{\"check\": \"fleet-overhead\", "
                    "\"events\": %llu, "
                    "\"serial_s\": %.6f, \"sharded1t_s\": %.6f, "
                    "\"ratio\": %.3f, \"gate\": %.2f, "
                    "\"digest_match\": %s, \"pass\": %s}\n",
                    static_cast<unsigned long long>(events), serial_s,
                    sharded_s, ratio,
                    min_ratio, digest_match ? "true" : "false",
                    gate_ok ? "true" : "false");
        return gate_ok ? 0 : 1;
    }
    if (!digest_match) {
        std::fprintf(stderr, "simcheck: overhead fleet DIVERGED "
                             "(serial vs shards=8/threads=1)\n");
        return 1;
    }
    std::printf("fleet-overhead: %llu events over 1000 boards; "
                "serial %.3fs, shards=8/threads=1 %.3fs, "
                "ratio %.2fx\n",
                static_cast<unsigned long long>(events), serial_s,
                sharded_s, ratio);
    if (ratio < min_ratio) {
        std::fprintf(stderr,
                     "simcheck: single-thread sharded overhead "
                     "%.2fx below the %.2fx floor (epoch protocol "
                     "constant costs regressed)\n",
                     ratio, min_ratio);
        return 1;
    }
    std::printf("simcheck: sharded overhead gate passed "
                "(%.2fx >= %.2fx)\n",
                ratio, min_ratio);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    tools::ArgParser args("simcheck",
                          "replay an experiment and verify bit-exact "
                          "determinism (JetSan)");
    args.add("device", "orin-nano", "orin-nano | nano | a40");
    args.add("model", "resnet50", "model name from the zoo");
    args.add("precision", "fp16", "fp32 | tf32 | fp16 | int8");
    args.add("batch", "1", "batch size");
    args.add("procs", "2", "concurrent processes");
    args.add("phase", "light", "light | deep");
    args.add("warmup", "100", "warm-up in ms");
    args.add("duration", "0.5", "measured window in s");
    args.add("runs", "2", "replays per seed (>= 2)");
    args.add("seeds", "1", "comma-separated seeds to replay");
    args.add("threads", "0",
             "replay worker threads (0 = auto / JETSIM_THREADS); "
             "replays run through core::Runner either way");
    args.add("mc-replay", "",
             "replay a jetmc counterexample file and verify the "
             "recorded failure reproduces");
    args.add("fleet-replay", "",
             "re-run a fleet replay spec (sharded differential "
             "battery dump) and verify serial == sharded");
    args.add("fleet-golden", "",
             "verify the committed fleet golden digests at shards "
             "1, 4 and 16 (CI pass 1c)");
    args.add("update", "0",
             "with --fleet-golden: regenerate the golden file from "
             "serial runs");
    args.add("fleet-scaling", "0",
             "scaling smoke: require >= this speedup at shards=4 on "
             ">= 4-core hosts (0 = off; digest always checked)");
    args.add("fleet-overhead", "0",
             "overhead gate: require shards=8/threads=1 to keep >= "
             "this fraction of the serial event rate on a 1000-board "
             "hierarchical fleet (0 = off; never self-skips)");
    args.add("json", "0",
             "with --fleet-scaling / --fleet-overhead: emit the "
             "verdict as one JSON object on stdout");
    if (!args.parse(argc, argv))
        return 2;

    if (!args.str("mc-replay").empty())
        return mcReplay(args.str("mc-replay"));
    if (!args.str("fleet-replay").empty())
        return fleetReplay(args.str("fleet-replay"));
    if (!args.str("fleet-golden").empty())
        return fleetGolden(args.str("fleet-golden"),
                           args.boolean("update"));
    if (args.dbl("fleet-scaling") > 0.0)
        return fleetScaling(args.dbl("fleet-scaling"),
                            args.boolean("json"));
    if (args.dbl("fleet-overhead") > 0.0)
        return fleetOverhead(args.dbl("fleet-overhead"),
                             args.boolean("json"));

    // Report-and-continue: this tool's job is to observe divergence,
    // not to abort on the first violation.
    check::Reporter::instance().setMode(check::Reporter::Mode::Log);

    core::ExperimentSpec spec;
    spec.device = args.str("device");
    spec.model = args.str("model");
    spec.precision = soc::precisionFromName(args.str("precision"));
    spec.batch = args.intval("batch");
    spec.processes = args.intval("procs");
    spec.phase = args.str("phase") == "deep" ? core::Phase::Deep
                                             : core::Phase::Light;
    spec.warmup = sim::msec(args.intval("warmup"));
    spec.duration = sim::sec(args.dbl("duration"));

    const int runs = std::max(2, args.intval("runs"));
    const auto seeds = parseSeeds(args.str("seeds"));

    int failures = 0;
    if (!planRoundTripCheck(spec))
        ++failures;

    // The replays for one seed are identical specs, so running them
    // as a parallel Runner batch checks two invariants at once: the
    // simulator replays bit-identically, and the parallel path itself
    // introduces no divergence (cells race in wall time but must not
    // in simulated time). Never cache here — a cache hit would echo
    // run 0's result back instead of re-simulating.
    core::Runner runner(args.intval("threads"), "",
                        /*env_cache=*/false);
    std::printf("replaying on %d worker thread(s)\n",
                runner.threads());
    for (const std::uint64_t seed : seeds) {
        spec.seed = seed;
        const std::vector<core::ExperimentSpec> batch(runs, spec);
        const auto results = runner.run(batch);
        std::uint64_t reference = 0;
        bool diverged = false;
        for (int i = 0; i < runs; ++i) {
            const auto digest = core::resultDigest(results[i]);
            if (i == 0) {
                reference = digest;
            } else if (digest != reference) {
                diverged = true;
                check::Reporter::instance().report(
                    check::Severity::Error,
                    check::Invariant::Determinism, "tools.simcheck",
                    check::kTimeUnknown,
                    "seed %llu run %d digest %016llx != reference "
                    "%016llx",
                    static_cast<unsigned long long>(seed), i,
                    static_cast<unsigned long long>(digest),
                    static_cast<unsigned long long>(reference));
            }
        }
        std::printf("seed %llu: %s (digest %016llx, %d runs)\n",
                    static_cast<unsigned long long>(seed),
                    diverged ? "DIVERGED" : "ok",
                    static_cast<unsigned long long>(reference), runs);
        if (diverged)
            ++failures;
    }

    if (failures) {
        std::fprintf(stderr,
                     "simcheck: %d of %zu checks failed to replay "
                     "bit-identically\n",
                     failures, seeds.size() + 1);
        return 1;
    }
    std::printf("simcheck: plan round trip and all %zu seed(s) "
                "replay bit-identically\n",
                seeds.size());
    return 0;
}
