/**
 * @file
 * simcheck: the JetSan replay harness.
 *
 * Runs one experiment spec several times from scratch and compares
 * the bit-exact result digests — the executable form of the
 * determinism invariant (same seed ⇒ identical prof metrics). Any
 * divergence is reported as a JetSan determinism violation and the
 * tool exits non-zero, making it suitable as a CI gate
 * (tools/ci.sh runs it after the sanitized test pass).
 *
 * Before the replays it also checks the plan round trip: the spec's
 * engine is serialized, deserialized and "run" through the
 * deterministic kernel cost model; the plan text and the timing
 * digest must be bit-identical on both sides, so a plan file can be
 * built once and deployed many times without drift.
 *
 *   simcheck --model=yolov8n --precision=int8 --procs=2 --runs=3
 *   simcheck --seeds=1,2,3        # distinct seeds must all differ? no:
 *                                 # each seed is replayed --runs times
 *
 * With --mc-replay=<file> it instead replays a jetmc counterexample:
 * the embedded configuration and choice script are reconstructed and
 * the recorded failure must reproduce exactly. This keeps the
 * model-checker honest — a CE that does not replay is a jetmc bug.
 */

#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "argparse.hh"
#include "check/digest.hh"
#include "check/reporter.hh"
#include "core/digest.hh"
#include "core/profiler.hh"
#include "core/runner.hh"
#include "gpu/cost_model.hh"
#include "mc/ce.hh"
#include "models/zoo.hh"
#include "sim/logging.hh"
#include "trt/builder.hh"

using namespace jetsim;

namespace {

std::vector<std::uint64_t>
parseSeeds(const std::string &csv)
{
    std::vector<std::uint64_t> seeds;
    std::string cur;
    for (const char c : csv + ",") {
        if (c == ',') {
            if (!cur.empty()) {
                for (const char d : cur) {
                    if (!std::isdigit(static_cast<unsigned char>(d)))
                        sim::fatal("--seeds: '%s' is not a number",
                                   cur.c_str());
                }
                seeds.push_back(std::stoull(cur));
            }
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (seeds.empty())
        sim::fatal("--seeds: no seeds given");
    return seeds;
}

/** Digest of a deterministic dry run: every kernel through the cost
 * model at full frequency with the jitter source disabled. */
std::uint64_t
dryRunDigest(const trt::Engine &e, const soc::DeviceSpec &spec)
{
    const gpu::KernelCostModel cost(spec);
    check::Digest d;
    for (const auto &k : e.kernels()) {
        const auto t = cost.timing(k, 1.0, nullptr);
        d.add(k.name);
        d.add(static_cast<std::int64_t>(t.duration));
        d.add(t.sm_active);
        d.add(t.issue_slot);
        d.add(t.tc_util);
        d.add(t.bw_util);
        d.add(t.compute_frac);
    }
    return d.value();
}

/**
 * serialize → deserialize → run must be invisible: identical plan
 * text on re-serialization and an identical dry-run timing digest.
 * Returns false (and reports Determinism violations) on divergence.
 */
bool
planRoundTripCheck(const core::ExperimentSpec &spec)
{
    const auto dev = soc::deviceByName(spec.device);
    trt::Builder builder(dev);
    trt::BuilderConfig cfg;
    cfg.precision = spec.precision;
    cfg.batch = spec.batch;
    const auto built =
        builder.build(models::modelByName(spec.model), cfg);

    const auto plan = built.serialize();
    const auto restored = trt::Engine::deserialize(plan);
    auto &rep = check::Reporter::instance();

    bool ok = true;
    if (restored.serialize() != plan) {
        ok = false;
        rep.report(check::Severity::Error,
                   check::Invariant::Determinism, "tools.simcheck",
                   check::kTimeUnknown,
                   "%s plan text not stable across a "
                   "serialize/deserialize round trip",
                   spec.model.c_str());
    }

    const auto before = dryRunDigest(built, dev);
    const auto after = dryRunDigest(restored, dev);
    if (before != after) {
        ok = false;
        rep.report(check::Severity::Error,
                   check::Invariant::Determinism, "tools.simcheck",
                   check::kTimeUnknown,
                   "%s dry-run digest %016llx != %016llx after plan "
                   "round trip",
                   spec.model.c_str(),
                   static_cast<unsigned long long>(before),
                   static_cast<unsigned long long>(after));
    }

    std::printf("plan round trip: %s (digest %016llx, %zu kernels)\n",
                ok ? "ok" : "DIVERGED",
                static_cast<unsigned long long>(before),
                built.kernels().size());
    return ok;
}

/**
 * Replay a jetmc counterexample file: reconstruct the model from the
 * embedded config, run the recorded choice script and require the
 * recorded failure kind to reproduce.
 */
int
mcReplay(const std::string &path)
{
    mc::CounterExample ce;
    std::string err;
    if (!mc::readCe(path, ce, err)) {
        std::fprintf(stderr, "simcheck: %s\n", err.c_str());
        return 2;
    }
    std::printf("mc-replay: model %s, failure '%s', %zu choices\n",
                ce.model.c_str(), ce.what.c_str(), ce.script.size());
    if (!ce.detail.empty())
        std::printf("mc-replay: recorded diagnosis: %s\n",
                    ce.detail.c_str());
    const std::string diag = mc::replayCe(ce);
    if (!diag.empty()) {
        std::fprintf(stderr,
                     "simcheck: counterexample did NOT reproduce: "
                     "%s\n",
                     diag.c_str());
        return 1;
    }
    std::printf("simcheck: counterexample reproduces the recorded "
                "'%s' failure\n",
                ce.what.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    tools::ArgParser args("simcheck",
                          "replay an experiment and verify bit-exact "
                          "determinism (JetSan)");
    args.add("device", "orin-nano", "orin-nano | nano | a40");
    args.add("model", "resnet50", "model name from the zoo");
    args.add("precision", "fp16", "fp32 | tf32 | fp16 | int8");
    args.add("batch", "1", "batch size");
    args.add("procs", "2", "concurrent processes");
    args.add("phase", "light", "light | deep");
    args.add("warmup", "100", "warm-up in ms");
    args.add("duration", "0.5", "measured window in s");
    args.add("runs", "2", "replays per seed (>= 2)");
    args.add("seeds", "1", "comma-separated seeds to replay");
    args.add("threads", "0",
             "replay worker threads (0 = auto / JETSIM_THREADS); "
             "replays run through core::Runner either way");
    args.add("mc-replay", "",
             "replay a jetmc counterexample file and verify the "
             "recorded failure reproduces");
    if (!args.parse(argc, argv))
        return 2;

    if (!args.str("mc-replay").empty())
        return mcReplay(args.str("mc-replay"));

    // Report-and-continue: this tool's job is to observe divergence,
    // not to abort on the first violation.
    check::Reporter::instance().setMode(check::Reporter::Mode::Log);

    core::ExperimentSpec spec;
    spec.device = args.str("device");
    spec.model = args.str("model");
    spec.precision = soc::precisionFromName(args.str("precision"));
    spec.batch = args.intval("batch");
    spec.processes = args.intval("procs");
    spec.phase = args.str("phase") == "deep" ? core::Phase::Deep
                                             : core::Phase::Light;
    spec.warmup = sim::msec(args.intval("warmup"));
    spec.duration = sim::sec(args.dbl("duration"));

    const int runs = std::max(2, args.intval("runs"));
    const auto seeds = parseSeeds(args.str("seeds"));

    int failures = 0;
    if (!planRoundTripCheck(spec))
        ++failures;

    // The replays for one seed are identical specs, so running them
    // as a parallel Runner batch checks two invariants at once: the
    // simulator replays bit-identically, and the parallel path itself
    // introduces no divergence (cells race in wall time but must not
    // in simulated time). Never cache here — a cache hit would echo
    // run 0's result back instead of re-simulating.
    core::Runner runner(args.intval("threads"), "",
                        /*env_cache=*/false);
    std::printf("replaying on %d worker thread(s)\n",
                runner.threads());
    for (const std::uint64_t seed : seeds) {
        spec.seed = seed;
        const std::vector<core::ExperimentSpec> batch(runs, spec);
        const auto results = runner.run(batch);
        std::uint64_t reference = 0;
        bool diverged = false;
        for (int i = 0; i < runs; ++i) {
            const auto digest = core::resultDigest(results[i]);
            if (i == 0) {
                reference = digest;
            } else if (digest != reference) {
                diverged = true;
                check::Reporter::instance().report(
                    check::Severity::Error,
                    check::Invariant::Determinism, "tools.simcheck",
                    check::kTimeUnknown,
                    "seed %llu run %d digest %016llx != reference "
                    "%016llx",
                    static_cast<unsigned long long>(seed), i,
                    static_cast<unsigned long long>(digest),
                    static_cast<unsigned long long>(reference));
            }
        }
        std::printf("seed %llu: %s (digest %016llx, %d runs)\n",
                    static_cast<unsigned long long>(seed),
                    diverged ? "DIVERGED" : "ok",
                    static_cast<unsigned long long>(reference), runs);
        if (diverged)
            ++failures;
    }

    if (failures) {
        std::fprintf(stderr,
                     "simcheck: %d of %zu checks failed to replay "
                     "bit-identically\n",
                     failures, seeds.size() + 1);
        return 1;
    }
    std::printf("simcheck: plan round trip and all %zu seed(s) "
                "replay bit-identically\n",
                seeds.size());
    return 0;
}
