/**
 * @file
 * netinfo: model-zoo inspector.
 *
 * Prints the layer/parameter/compute summary of a zoo model, the
 * engine the builder would produce for a device/precision/batch
 * (kernel count, per-kernel precision mix, memory footprint), and —
 * with `--dot` — a Graphviz rendering of the graph.
 *
 *   netinfo --model=yolov8n
 *   netinfo --model=resnet50 --device=nano --precision=int8
 *   netinfo --model=fcn_resnet50 --dot > fcn.dot
 */

#include <cstdio>
#include <iostream>
#include <map>

#include "argparse.hh"
#include "models/zoo.hh"
#include "prof/report.hh"
#include "trt/builder.hh"

using namespace jetsim;

int
main(int argc, char **argv)
{
    tools::ArgParser args("netinfo", "model and engine inspector");
    args.add("model", "resnet50", "zoo model name, or 'all'");
    args.add("device", "orin-nano", "target device for the engine");
    args.add("precision", "fp16", "engine precision");
    args.add("batch", "1", "engine batch size");
    args.add("dot", "false", "emit Graphviz dot instead of tables");
    if (!args.parse(argc, argv))
        return 1;

    if (args.boolean("dot")) {
        const auto net = models::modelByName(args.str("model"));
        std::fputs(net.toDot().c_str(), stdout);
        return 0;
    }

    std::vector<std::string> names;
    if (args.str("model") == "all")
        names = models::allModelNames();
    else
        names = {args.str("model")};

    const auto dev = soc::deviceByName(args.str("device"));
    trt::Builder builder(dev);
    trt::BuilderConfig cfg;
    cfg.precision = soc::precisionFromName(args.str("precision"));
    cfg.batch = args.intval("batch");

    prof::Table t({"model", "layers", "params (M)", "MACs (G)",
                   "kernels", "precision mix", "weights (MiB)",
                   "total (MiB)", "fallbacks"});
    for (const auto &name : names) {
        const auto net = models::modelByName(name);
        const auto engine = builder.build(net, cfg);

        std::map<soc::Precision, int> mix;
        for (const auto &k : engine.kernels())
            ++mix[k.prec];
        std::string mix_str;
        for (const auto &[p, n] : mix) {
            if (!mix_str.empty())
                mix_str += " ";
            mix_str += std::string(soc::name(p)) + ":" +
                       std::to_string(n);
        }

        t.addRow({name, std::to_string(net.size()),
                  prof::fmt(net.totalParams() / 1e6),
                  prof::fmt(net.totalMacs() / 1e9),
                  std::to_string(engine.kernels().size()), mix_str,
                  prof::fmt(sim::toMiB(engine.weightBytes()), 1),
                  prof::fmt(sim::toMiB(engine.deviceBytes()), 1),
                  std::to_string(engine.fallbackOps())});
    }
    std::printf("engines for %s at %s, batch %d\n\n",
                dev.name.c_str(), args.str("precision").c_str(),
                cfg.batch);
    t.print(std::cout);
    return 0;
}
