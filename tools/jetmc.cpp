/**
 * @file
 * jetmc - schedule-space model checker for concurrent deployments.
 *
 * Explores every interleaving (bounded depth, DPOR-reduced) of small
 * closed deployments and proves, over the explored space:
 *   - deadlock-freedom,
 *   - schedule-independence of the logical result digest,
 *   - worst-case per-process blocking bounds (observed maxima).
 *
 * Modes:
 *   jetmc --selftest
 *       Checker-checks-itself: proves the ordered toy lock model
 *       safe, then *finds* the seeded deadlock in the inverted
 *       variant, minimises the trace, writes it as a counterexample
 *       file and replays it. Exits non-zero if the deadlock is not
 *       found — CI runs this before trusting any deployment verdict.
 *   jetmc --procs=N [--model=resnet50] [--device=orin-nano]
 *       Check one N-process deployment.
 *   jetmc --zoo --procs=N
 *       Check every paper model at N processes.
 *
 * --compare re-runs the search without the reduction and reports the
 * naive/DPOR run ratio; --min-reduction fails CI when the reduction
 * underperforms. Counterexamples go to --ce-dir and replay with
 * `simcheck --mc-replay=<file>`.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "argparse.hh"

#include "mc/ce.hh"
#include "mc/deployment.hh"
#include "mc/explorer.hh"
#include "mc/toylock.hh"
#include "models/zoo.hh"

using namespace jetsim;

namespace {

struct CheckResult
{
    std::string label;
    mc::ExploreReport dpor;
    bool compared = false;
    std::uint64_t naive_runs = 0;
    bool naive_capped = false;
    double reduction = 1.0;
    std::string ce_path;
};

/** Split "a,b,c"; empty string gives an empty list. */
std::vector<std::string>
splitList(const std::string &v)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos < v.size()) {
        const auto comma = v.find(',', pos);
        const auto end = comma == std::string::npos ? v.size() : comma;
        if (end > pos)
            out.push_back(v.substr(pos, end - pos));
        pos = end + 1;
    }
    return out;
}

void
printReport(const CheckResult &r)
{
    const auto &rep = r.dpor;
    std::printf("--- %s\n", r.label.c_str());
    std::printf("    runs %llu  branches %llu  pruned %llu  "
                "max-trace %d  max-events %llu\n",
                static_cast<unsigned long long>(rep.runs),
                static_cast<unsigned long long>(rep.branches),
                static_cast<unsigned long long>(rep.pruned),
                rep.max_trace_len,
                static_cast<unsigned long long>(rep.max_events));
    if (r.compared)
        std::printf("    naive runs %llu%s  reduction %.1fx\n",
                    static_cast<unsigned long long>(r.naive_runs),
                    r.naive_capped ? " (capped)" : "",
                    r.reduction);
    if (rep.clean()) {
        std::printf("    deadlock-free: %s   digest %016llx "
                    "schedule-independent: %s\n",
                    rep.proved() ? "PROVED (bounded)" : "no failure "
                                                        "found",
                    static_cast<unsigned long long>(rep.digest),
                    rep.proved() ? "PROVED (bounded)" : "held");
        for (std::size_t i = 0; i < rep.max_block_ms.size(); ++i)
            std::printf("    proc %zu worst-case blocking %.3f ms\n",
                        i, rep.max_block_ms[i]);
        if (rep.depth_clipped)
            std::printf("    note: sites beyond --depth existed "
                        "(bounded proof)\n");
        if (rep.run_budget_hit || rep.event_bound_hit)
            std::printf("    note: search budget hit; space not "
                        "exhausted\n");
    } else {
        std::printf("    FAILED: %s%s%s\n", rep.ce_what.c_str(),
                    rep.ce_detail.empty() ? "" : " - ",
                    rep.ce_detail.c_str());
        std::printf("    counterexample script (%zu choices):",
                    rep.ce_script.size());
        for (const int c : rep.ce_script)
            std::printf(" %d", c);
        std::printf("\n");
        if (!r.ce_path.empty())
            std::printf("    written to %s (replay: simcheck "
                        "--mc-replay=%s)\n",
                        r.ce_path.c_str(), r.ce_path.c_str());
    }
}

void
emitJson(const std::string &path,
         const std::vector<CheckResult> &results)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "jetmc: cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"configs\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        const auto &rep = r.dpor;
        std::fprintf(f,
                     "    {\"label\": \"%s\", \"runs\": %llu, "
                     "\"pruned\": %llu, \"clean\": %s, "
                     "\"proved\": %s, \"digest\": \"%016llx\", "
                     "\"ce\": \"%s\"",
                     r.label.c_str(),
                     static_cast<unsigned long long>(rep.runs),
                     static_cast<unsigned long long>(rep.pruned),
                     rep.clean() ? "true" : "false",
                     rep.proved() ? "true" : "false",
                     static_cast<unsigned long long>(rep.digest),
                     rep.ce_what.c_str());
        if (r.compared)
            std::fprintf(f,
                         ", \"naive_runs\": %llu, "
                         "\"reduction\": %.2f",
                         static_cast<unsigned long long>(r.naive_runs),
                         r.reduction);
        std::fprintf(f, ", \"max_block_ms\": [");
        for (std::size_t b = 0; b < rep.max_block_ms.size(); ++b)
            std::fprintf(f, "%s%.4f", b ? ", " : "",
                         rep.max_block_ms[b]);
        std::fprintf(f, "]}%s\n",
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "jetmc: wrote %s\n", path.c_str());
}

/** Write the CE (if any) next to the report; returns the path. */
std::string
persistCe(const mc::ExploreReport &rep, const std::string &ce_dir,
          const std::string &model_id, const mc::DeployConfig *deploy,
          int index)
{
    if (rep.clean() || ce_dir.empty())
        return "";
    mc::CounterExample ce;
    ce.model = deploy ? "deployment" : model_id;
    ce.what = rep.ce_what;
    ce.detail = rep.ce_detail;
    ce.ref_digest = rep.digest;
    ce.script = rep.ce_script;
    if (deploy)
        ce.deploy = *deploy;
    const std::string path =
        ce_dir + "/jetmc_ce_" + std::to_string(index) + ".json";
    if (!mc::writeCe(ce, path)) {
        std::fprintf(stderr, "jetmc: cannot write %s\n", path.c_str());
        return "";
    }
    return path;
}

int
selftest(const std::string &ce_dir)
{
    std::printf("jetmc self-test\n");
    mc::ExploreConfig cfg;
    cfg.depth = 16;
    cfg.max_runs = 50000;

    // 1. The well-ordered variant must verify clean and exhaustively.
    mc::ToyLockModel ordered(false);
    const auto safe = mc::explore(ordered, cfg);
    std::printf("  ordered locks: %llu runs, %s\n",
                static_cast<unsigned long long>(safe.runs),
                safe.proved() ? "deadlock-free (proved)" : "FAILED");
    if (!safe.proved()) {
        std::fprintf(stderr,
                     "jetmc: self-test FAILED: safe model did not "
                     "verify (%s)\n",
                     safe.ce_what.c_str());
        return 1;
    }

    // 2. The inverted variant must deadlock, and the minimal trace
    //    must replay.
    mc::ToyLockModel inverted(true);
    const auto bad = mc::explore(inverted, cfg);
    if (!bad.deadlock) {
        std::fprintf(stderr, "jetmc: self-test FAILED: seeded "
                             "deadlock not found\n");
        return 1;
    }
    std::printf("  inverted locks: deadlock found in %llu runs, "
                "minimal script %zu choices (%s)\n",
                static_cast<unsigned long long>(bad.runs),
                bad.ce_script.size(), bad.ce_detail.c_str());

    mc::CounterExample ce;
    ce.model = "toylock-inverted";
    ce.what = bad.ce_what;
    ce.detail = bad.ce_detail;
    ce.ref_digest = bad.digest;
    ce.script = bad.ce_script;
    const std::string dir = ce_dir.empty() ? "." : ce_dir;
    const std::string path = dir + "/jetmc_ce_selftest.json";
    if (!mc::writeCe(ce, path)) {
        std::fprintf(stderr, "jetmc: self-test FAILED: cannot write "
                             "%s\n",
                     path.c_str());
        return 1;
    }
    mc::CounterExample back;
    std::string err;
    if (!mc::readCe(path, back, err)) {
        std::fprintf(stderr, "jetmc: self-test FAILED: %s\n",
                     err.c_str());
        return 1;
    }
    const std::string replay = mc::replayCe(back);
    if (!replay.empty()) {
        std::fprintf(stderr,
                     "jetmc: self-test FAILED: counterexample did "
                     "not replay: %s\n",
                     replay.c_str());
        return 1;
    }
    std::printf("  counterexample replayed from %s\n", path.c_str());
    std::printf("jetmc self-test OK\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    tools::ArgParser args("jetmc",
                          "schedule-space model checker: proves "
                          "deadlock-freedom and schedule-independence "
                          "of bounded concurrent deployments");
    args.add("selftest", "false",
             "run the seeded-deadlock self-test and exit");
    args.add("device", "orin-nano", "board to deploy on");
    args.add("model", "resnet50", "model for every process");
    args.add("models", "",
             "comma list of per-process models (overrides "
             "--model/--procs)");
    args.add("zoo", "false", "check every paper model at --procs");
    args.add("procs", "2", "number of concurrent processes");
    args.add("precision", "fp16", "engine precision");
    args.add("max-ecs", "2", "ECs each process enqueues (closed "
                             "workload bound)");
    args.add("depth", "24", "max arbitration sites to branch at");
    args.add("max-runs", "20000", "execution budget per config");
    args.add("max-events", "500000", "event budget per run");
    args.add("shared-buffer", "false",
             "seed a cross-process buffer conflict (dependence "
             "injection)");
    args.add("no-dpor", "false", "disable the partial-order "
                                 "reduction");
    args.add("compare", "false",
             "also run the naive DFS and report the reduction "
             "factor");
    args.add("min-reduction", "0",
             "fail unless DPOR reduces runs by at least this factor "
             "(implies --compare)");
    args.add("json", "", "write a machine-readable report");
    args.add("ce-dir", "", "directory for counterexample files");
    if (!args.parse(argc, argv))
        return 2;

    if (args.boolean("selftest"))
        return selftest(args.str("ce-dir"));

    const double min_reduction = args.dbl("min-reduction");
    const bool compare =
        args.boolean("compare") || min_reduction > 0;

    std::vector<std::vector<std::string>> proc_sets;
    if (!args.str("models").empty()) {
        proc_sets.push_back(splitList(args.str("models")));
    } else {
        const int procs = args.intval("procs");
        if (procs < 1 || procs > 8) {
            std::fprintf(stderr,
                         "jetmc: --procs must be in [1, 8]\n");
            return 2;
        }
        std::vector<std::string> names;
        if (args.boolean("zoo"))
            for (const auto &m : models::paperModelNames())
                names.push_back(m);
        else
            names.push_back(args.str("model"));
        for (const auto &m : names)
            proc_sets.push_back(std::vector<std::string>(
                static_cast<std::size_t>(procs), m));
    }

    mc::ExploreConfig ecfg;
    ecfg.depth = args.intval("depth");
    ecfg.max_runs =
        static_cast<std::uint64_t>(args.intval("max-runs"));
    ecfg.dpor = !args.boolean("no-dpor");

    std::vector<CheckResult> results;
    bool failed = false;
    int index = 0;
    for (const auto &set : proc_sets) {
        mc::DeployConfig dc;
        dc.device = args.str("device");
        dc.max_ecs =
            static_cast<std::uint64_t>(args.intval("max-ecs"));
        dc.max_events =
            static_cast<std::uint64_t>(args.intval("max-events"));
        dc.shared_buffer = args.boolean("shared-buffer");
        for (const auto &m : set) {
            mc::DeployConfig::Proc p;
            p.model = m;
            p.precision =
                soc::precisionFromName(args.str("precision"));
            dc.procs.push_back(std::move(p));
        }

        mc::DeploymentModel model(dc);
        CheckResult r;
        r.label = model.name();
        r.dpor = mc::explore(model, ecfg);
        if (compare) {
            mc::ExploreConfig naive = ecfg;
            naive.dpor = false;
            // Cap the naive search: it exists only to measure the
            // ratio, and without the reduction it can be enormous.
            naive.max_runs =
                std::max<std::uint64_t>(r.dpor.runs * 200, 2000);
            const auto nrep = mc::explore(model, naive);
            r.compared = true;
            r.naive_runs = nrep.runs;
            r.naive_capped = nrep.run_budget_hit;
            r.reduction = r.dpor.runs
                              ? static_cast<double>(nrep.runs) /
                                    static_cast<double>(r.dpor.runs)
                              : 1.0;
        }
        r.ce_path = persistCe(r.dpor, args.str("ce-dir"), r.label,
                              &dc, index++);
        printReport(r);
        if (!r.dpor.clean())
            failed = true;
        if (min_reduction > 0 && r.reduction < min_reduction) {
            std::fprintf(stderr,
                         "jetmc: reduction %.1fx below required "
                         "%.1fx for %s\n",
                         r.reduction, min_reduction,
                         r.label.c_str());
            failed = true;
        }
        results.push_back(std::move(r));
    }

    if (!args.str("json").empty())
        emitJson(args.str("json"), results);

    std::uint64_t total_runs = 0;
    for (const auto &r : results)
        total_runs += r.dpor.runs;
    std::printf("jetmc: %zu config(s), %llu runs: %s\n",
                results.size(),
                static_cast<unsigned long long>(total_runs),
                failed ? "FAILED" : "OK");
    return failed ? 1 : 0;
}
