/**
 * @file
 * jetprof: the two-phase profiling methodology as a command-line
 * tool. Wraps the core library so a deployment engineer can answer
 * the paper's questions without writing C++:
 *
 *   jetprof --mode=run   --model=yolov8n --precision=int8 --procs=4
 *   jetprof --mode=sweep --batches=1,2,4,8 --procs=1,2,4 --csv
 *   jetprof --mode=catalog
 */

#include <cstdio>
#include <iostream>

#include "argparse.hh"
#include "core/bottleneck.hh"
#include "core/profiler.hh"
#include "core/report.hh"
#include "core/runner.hh"
#include "core/sweep.hh"
#include "prof/metrics.hh"
#include "prof/report.hh"

using namespace jetsim;

namespace {

core::ExperimentSpec
specFromArgs(const tools::ArgParser &args)
{
    core::ExperimentSpec s;
    s.device = args.str("device");
    s.model = args.str("model");
    s.precision = soc::precisionFromName(args.str("precision"));
    s.batch = args.intval("batch");
    s.processes = args.intval("procs");
    s.phase = args.str("phase") == "deep" ? core::Phase::Deep
                                          : core::Phase::Light;
    s.warmup = sim::msec(args.intval("warmup"));
    s.duration = sim::sec(args.dbl("duration"));
    s.dvfs = args.boolean("dvfs");
    s.seed = static_cast<std::uint64_t>(args.intval("seed"));
    return s;
}

int
runOne(const tools::ArgParser &args)
{
    const auto spec = specFromArgs(args);
    std::fprintf(stderr, "running %s\n", spec.label().c_str());
    const auto r = core::runExperiment(spec);

    if (!r.all_deployed) {
        std::printf("deployment failed: %d/%d processes fit\n",
                    r.deployed_count, spec.processes);
        return 1;
    }

    prof::Table t({"metric", "value", "unit"});
    t.addRow({"throughput", prof::fmt(r.total_throughput, 1),
              "img/s"});
    t.addRow({"throughput/process",
              prof::fmt(r.throughput_per_process, 1), "img/s"});
    t.addRow({"power avg", prof::fmt(r.avg_power_w), "W"});
    t.addRow({"power max", prof::fmt(r.max_power_w), "W"});
    t.addRow({"gpu util", prof::fmt(r.gpu_util_pct, 1), "%"});
    t.addRow({"memory", prof::fmt(r.mem_pct, 1), "% of RAM"});
    t.addRow({"workload memory", prof::fmt(r.workload_mem_mb, 0),
              "MiB"});
    t.addRow({"EC duration", prof::fmt(r.mean.ec_ms), "ms"});
    t.addRow({"launch API / EC", prof::fmt(r.mean.launch_ms_per_ec),
              "ms"});
    t.addRow({"blocking / EC", prof::fmt(r.mean.blocking_ms_per_ec),
              "ms"});
    if (!r.sm_active.empty()) {
        t.addRow({"SM active p50", prof::fmt(r.sm_active.median(), 1),
                  "%"});
        t.addRow({"issue slot p50",
                  prof::fmt(r.issue_slot.median(), 1), "%"});
        t.addRow({"TC util p50", prof::fmt(r.tc_util.median(), 1),
                  "%"});
    }
    t.print(std::cout);

    const auto b = core::analyzeBottleneck(r);
    std::printf("\nbottleneck: %s - %s\n",
                core::bottleneckName(b.primary),
                b.explanation.c_str());
    return 0;
}

int
runSweep(const tools::ArgParser &args)
{
    auto base = specFromArgs(args);
    const auto batches = args.intlist("batches");
    const auto procs = args.intlist("procs-list");
    const bool csv = args.boolean("csv");

    // Same grid order as core::sweepGrid (row-major over processes),
    // but through an explicitly configured Runner so --threads and
    // --cache override the JETSIM_THREADS / JETSIM_CACHE_DIR env.
    std::vector<core::ExperimentSpec> specs;
    specs.reserve(batches.size() * procs.size());
    for (const int p : procs) {
        base.processes = p;
        for (const int b : batches) {
            base.batch = b;
            specs.push_back(base);
        }
    }
    core::Runner runner(args.intval("threads"), args.str("cache"));
    const auto results =
        runner.run(specs, [](const std::string &label) {
            std::fprintf(stderr, "  running %s\n", label.c_str());
        });
    const auto cs = runner.cacheStats();
    if (cs.hits + cs.misses > 0)
        std::fprintf(stderr,
                     "cache: %llu hits, %llu misses (%d threads)\n",
                     static_cast<unsigned long long>(cs.hits),
                     static_cast<unsigned long long>(cs.misses),
                     runner.threads());

    prof::Table t({"batch", "procs", "tput", "t/p", "power_w",
                   "mem_mib", "ec_ms", "block_ms", "status"});
    for (const auto &r : results)
        t.addRow({std::to_string(r.spec.batch),
                  std::to_string(r.spec.processes),
                  prof::fmt(r.total_throughput, 1),
                  prof::fmt(r.throughput_per_process, 1),
                  prof::fmt(r.avg_power_w),
                  prof::fmt(r.workload_mem_mb, 0),
                  prof::fmt(r.mean.ec_ms),
                  prof::fmt(r.mean.blocking_ms_per_ec),
                  r.all_deployed ? "ok" : "OOM"});
    if (csv)
        std::fputs(t.csv().c_str(), stdout);
    else
        t.print(std::cout);

    for (const auto &o : core::makeObservations(results))
        std::fprintf(stderr, "[%s] %s\n", o.id.c_str(),
                     o.text.c_str());
    return 0;
}

int
printCatalog()
{
    prof::Table t({"id", "name", "level", "tool", "unit",
                   "description"});
    for (const auto &m : prof::metricCatalog())
        t.addRow({m.id, m.name, prof::levelName(m.level),
                  prof::sourceName(m.source), m.unit, m.description});
    t.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    tools::ArgParser args("jetprof",
                          "two-phase edge inference profiler "
                          "(simulated Jetson stack)");
    args.add("mode", "run", "run | sweep | catalog | report");
    args.add("out", "jetprof_report.md",
             "output path (report mode)");
    args.add("device", "orin-nano", "orin-nano | nano | a40");
    args.add("model", "resnet50", "workload model");
    args.add("precision", "fp16", "int8 | fp16 | tf32 | fp32");
    args.add("batch", "1", "batch size (run mode)");
    args.add("procs", "1", "concurrent processes (run mode)");
    args.add("batches", "1,2,4,8", "batch list (sweep mode)");
    args.add("procs-list", "1,2,4", "process list (sweep mode)");
    args.add("phase", "light", "light | deep");
    args.add("warmup", "400", "warm-up milliseconds");
    args.add("duration", "3", "measured seconds");
    args.add("dvfs", "true", "enable the DVFS governor");
    args.add("seed", "1", "simulation seed");
    args.add("csv", "false", "CSV output (sweep mode)");
    args.add("threads", "0",
             "sweep worker threads (0 = auto / JETSIM_THREADS)");
    args.add("cache", "",
             "result-cache directory (default JETSIM_CACHE_DIR)");
    if (!args.parse(argc, argv))
        return 1;

    const auto mode = args.str("mode");
    if (mode == "run")
        return runOne(args);
    if (mode == "sweep")
        return runSweep(args);
    if (mode == "catalog")
        return printCatalog();
    if (mode == "report") {
        const auto spec = specFromArgs(args);
        const auto path = args.str("out");
        std::fprintf(stderr, "profiling %s (both phases)\n",
                     spec.label().c_str());
        if (!core::writeReport(spec, path)) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", path.c_str());
        return 0;
    }
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    args.usage();
    return 1;
}
