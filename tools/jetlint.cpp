/**
 * @file
 * jetlint: ahead-of-time linter for jetsim models, plans and
 * experiment configs.
 *
 * The paper's costliest mistakes happen before the first inference:
 * deploying more FCN_ResNet50 processes than the Nano's memory holds,
 * requesting int8 on a board without int8 kernels, or sweeping a grid
 * the hardware cannot run. jetlint catches those at config time, in
 * milliseconds, without simulating a single tick.
 *
 *   jetlint                                   # lint one cell (flags)
 *   jetlint --model=fcn_resnet50 --device=nano --procs=4
 *   jetlint --zoo --device=all                # every model x precision
 *   jetlint --examples                        # shipped example configs
 *   jetlint --plan=resnet50.plan              # serialized engine file
 *   jetlint --list-rules
 *
 * Exit status: 0 clean, 1 error findings (or warnings under
 * --werror), 2 usage/IO trouble. CI runs the --zoo and --examples
 * modes and gates on the exit status.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "argparse.hh"
#include "lint/lint.hh"
#include "models/zoo.hh"
#include "soc/device_spec.hh"
#include "trt/builder.hh"

using namespace jetsim;

namespace {

/**
 * Print the rule catalogue. The markdown form is the single source
 * of truth for README.md's rule table — regenerate with
 * `jetlint --list-rules --markdown` instead of editing the table by
 * hand; tools/ci.sh checks the README mentions every live rule ID.
 */
void
listRules(bool markdown)
{
    if (markdown) {
        std::printf("| Rule | Severity | Title | Description |\n");
        std::printf("|---|---|---|---|\n");
        for (const auto rule : lint::allRules()) {
            const auto &info = lint::ruleInfo(rule);
            std::printf("| %s | %s | %s | %s |\n", info.id,
                        check::severityName(info.severity),
                        info.title, info.description);
        }
        return;
    }
    std::printf("%-6s %-8s %-34s %s\n", "rule", "severity", "title",
                "description");
    for (const auto rule : lint::allRules()) {
        const auto &info = lint::ruleInfo(rule);
        std::printf("%-6s %-8s %-34s %s\n", info.id,
                    check::severityName(info.severity), info.title,
                    info.description);
    }
}

std::vector<std::string>
deviceList(const std::string &flag)
{
    if (flag == "all")
        return soc::deviceNames();
    return {flag};
}

std::vector<soc::Precision>
precisionList(const std::string &flag)
{
    if (flag == "all")
        return {soc::kAllPrecisions.begin(), soc::kAllPrecisions.end()};
    return {soc::precisionFromName(flag)};
}

/** Lint every zoo model at every requested precision on every
 * requested board: the CI sweep. */
void
lintZoo(const std::vector<std::string> &devices,
        const std::vector<soc::Precision> &precisions, int batch,
        int procs, lint::Report &rep)
{
    for (const auto &model : models::allModelNames()) {
        const auto net = models::modelByName(model);
        lint::lintNetwork(net, rep);
        for (const auto &dev_name : devices) {
            const auto dev = soc::findDevice(dev_name);
            if (!dev) {
                rep.add(lint::Rule::ConfigUnknownDevice, "config", "",
                        "unknown device '" + dev_name + "'");
                continue;
            }
            trt::Builder builder(*dev);
            for (const auto prec : precisions) {
                trt::BuilderConfig cfg;
                cfg.precision = prec;
                cfg.batch = batch;
                const auto engine = builder.build(net, cfg);
                lint::lintEngine(engine, *dev, rep);
                lint::lintDeployment(engine, procs, *dev, rep);
            }
        }
    }
}

/** The shipped examples' specs, kept in lockstep with examples/ so
 * CI proves the documented entry points lint clean. */
void
lintExamples(lint::Report &rep)
{
    // examples/quickstart.cpp defaults.
    core::ExperimentSpec quickstart;
    quickstart.device = "orin-nano";
    quickstart.model = "resnet50";
    quickstart.precision = soc::Precision::Int8;
    lint::lintExperiment(quickstart, rep);

    // examples/edge_cloud_offload.cpp per-placement cell.
    for (const auto &dev_name : soc::deviceNames()) {
        core::ExperimentSpec s;
        s.device = dev_name;
        s.model = "yolov8n";
        s.precision = soc::Precision::Fp16;
        s.batch = 4;
        s.warmup = sim::msec(250);
        s.duration = sim::sec(2);
        lint::lintExperiment(s, rep);
    }

    // examples/precision_explorer.cpp sweep.
    for (const auto prec : soc::kAllPrecisions) {
        core::ExperimentSpec s;
        s.model = "resnet50";
        s.precision = prec;
        s.warmup = sim::msec(250);
        s.duration = sim::sec(2);
        lint::lintExperiment(s, rep);
    }

    // examples/mixed_tenancy.cpp multi-tenant mix.
    core::MixedExperimentSpec mix;
    mix.device = "orin-nano";
    mix.workloads = {
        core::WorkloadSpec{"resnet50", soc::Precision::Int8, 1, 2},
        core::WorkloadSpec{"yolov8n", soc::Precision::Fp16, 2, 1},
        core::WorkloadSpec{"mobilenet_v2", soc::Precision::Int8, 1, 1},
    };
    mix.warmup = sim::msec(300);
    mix.duration = sim::sec(2);
    lint::lintExperiment(mix, rep);
}

/** Lint a serialized engine plan file (netinfo/trtexec_sim output). */
bool
lintPlanFile(const std::string &path, const std::string &device,
             lint::Report &rep)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "jetlint: cannot read plan '%s'\n",
                     path.c_str());
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const auto engine = trt::Engine::deserialize(text.str());
    if (const auto dev = soc::findDevice(device))
        lint::lintEngine(engine, *dev, rep);
    else
        lint::lintEngine(engine, rep);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    tools::ArgParser args("jetlint",
                          "static model/plan/config linter");
    args.add("model", "resnet50", "zoo model name");
    args.add("device", "orin-nano", "target device, or 'all'");
    args.add("precision", "fp16", "engine precision, or 'all'");
    args.add("batch", "1", "engine batch size");
    args.add("procs", "1", "concurrent process count");
    args.add("zoo", "false", "lint every zoo model");
    args.add("examples", "false", "lint the shipped example configs");
    args.add("plan", "", "lint a serialized engine plan file");
    args.add("json", "false", "emit findings as JSON");
    args.add("werror", "false", "treat warnings as errors");
    args.add("list-rules", "false", "print the rule catalogue");
    args.add("markdown", "false",
             "render --list-rules as the README markdown table");
    if (!args.parse(argc, argv))
        return 2;

    if (args.boolean("list-rules")) {
        listRules(args.boolean("markdown"));
        return 0;
    }

    lint::Report rep;
    if (args.boolean("zoo")) {
        lintZoo(deviceList(args.str("device")),
                precisionList(args.str("precision")),
                args.intval("batch"), args.intval("procs"), rep);
    } else if (args.boolean("examples")) {
        lintExamples(rep);
    } else if (args.given("plan")) {
        if (!lintPlanFile(args.str("plan"), args.str("device"), rep))
            return 2;
    } else {
        core::ExperimentSpec spec;
        spec.device = args.str("device");
        spec.model = args.str("model");
        spec.precision = soc::precisionFromName(args.str("precision"));
        spec.batch = args.intval("batch");
        spec.processes = args.intval("procs");
        lint::lintExperiment(spec, rep);
    }

    if (args.boolean("json"))
        std::fputs(rep.json().c_str(), stdout);
    else
        std::fputs(rep.text().c_str(), stdout);

    if (rep.errors() > 0)
        return 1;
    if (args.boolean("werror") && rep.warnings() > 0)
        return 1;
    return 0;
}
