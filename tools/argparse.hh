/**
 * @file
 * Minimal command-line flag parser for the jetsim tools.
 *
 * Supports `--flag=value`, `--flag value` and boolean `--flag`
 * switches, with typed accessors, defaults, and generated help.
 */

#ifndef JETSIM_TOOLS_ARGPARSE_HH
#define JETSIM_TOOLS_ARGPARSE_HH

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace jetsim::tools {

/** Declarative flag set with typed lookup. */
class ArgParser
{
  public:
    ArgParser(std::string program, std::string description)
        : program_(std::move(program)),
          description_(std::move(description))
    {
    }

    /** Declare a flag (name without the leading dashes). */
    void
    add(const std::string &name, const std::string &default_value,
        const std::string &help)
    {
        order_.push_back(name);
        defaults_[name] = default_value;
        help_[name] = help;
    }

    /**
     * Parse argv. Unknown flags or `--help` print usage; unknown
     * flags exit non-zero.
     */
    bool
    parse(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                usage();
                std::exit(0);
            }
            if (arg.rfind("--", 0) != 0) {
                std::fprintf(stderr, "%s: unexpected argument '%s'\n",
                             program_.c_str(), arg.c_str());
                usage();
                return false;
            }
            arg = arg.substr(2);
            std::string value;
            const auto eq = arg.find('=');
            if (eq != std::string::npos) {
                value = arg.substr(eq + 1);
                arg = arg.substr(0, eq);
            }
            if (!defaults_.count(arg)) {
                std::fprintf(stderr, "%s: unknown flag '--%s'\n",
                             program_.c_str(), arg.c_str());
                usage();
                return false;
            }
            if (eq == std::string::npos) {
                // `--flag value` unless the next token is a flag or
                // missing (then it is a boolean switch).
                if (i + 1 < argc &&
                    std::string(argv[i + 1]).rfind("--", 0) != 0)
                    value = argv[++i];
                else
                    value = "true";
            }
            values_[arg] = value;
        }
        return true;
    }

    std::string
    str(const std::string &name) const
    {
        auto it = values_.find(name);
        if (it != values_.end())
            return it->second;
        return defaults_.at(name);
    }

    int
    intval(const std::string &name) const
    {
        return std::atoi(str(name).c_str());
    }

    double
    dbl(const std::string &name) const
    {
        return std::atof(str(name).c_str());
    }

    bool
    boolean(const std::string &name) const
    {
        const auto v = str(name);
        return v == "true" || v == "1" || v == "yes" || v == "on";
    }

    /** Comma-separated integer list ("1,2,4" -> {1,2,4}). */
    std::vector<int>
    intlist(const std::string &name) const
    {
        std::vector<int> out;
        const std::string v = str(name);
        std::size_t pos = 0;
        while (pos < v.size()) {
            const auto comma = v.find(',', pos);
            const auto end =
                comma == std::string::npos ? v.size() : comma;
            out.push_back(std::atoi(v.substr(pos, end - pos).c_str()));
            pos = end + 1;
        }
        return out;
    }

    /** True when the user supplied the flag explicitly. */
    bool given(const std::string &name) const
    {
        return values_.count(name) > 0;
    }

    void
    usage() const
    {
        std::fprintf(stderr, "%s - %s\n\nflags:\n", program_.c_str(),
                     description_.c_str());
        for (const auto &name : order_)
            std::fprintf(stderr, "  --%-14s %s (default: %s)\n",
                         name.c_str(), help_.at(name).c_str(),
                         defaults_.at(name).c_str());
    }

  private:
    std::string program_;
    std::string description_;
    std::vector<std::string> order_;
    std::map<std::string, std::string> defaults_;
    std::map<std::string, std::string> help_;
    std::map<std::string, std::string> values_;
};

} // namespace jetsim::tools

#endif // JETSIM_TOOLS_ARGPARSE_HH
