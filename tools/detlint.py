#!/usr/bin/env python3
"""detlint: source-level determinism lint for the simulator core.

jetsim's foundational invariant is bit-exact replay: a run is a pure
function of (spec, seed). The dynamic checkers (JetSan, simcheck,
jetmc) catch divergence after the fact; this lint bans the constructs
that *cause* it from ever entering src/:

  wall-clock   time(), clock(), gettimeofday, std::chrono::*_clock
               (simulated time comes from sim::EventQueue::now();
               wall time is only legal in bench/ and tools/)
  rand         rand(), srand(), std::random_device (the only
               sanctioned randomness is the seeded sim::Rng)
  getenv       std::getenv (environment reads make results depend on
               ambient state; read once at startup and annotate)
  sleep        std::this_thread::sleep_for/sleep_until, usleep,
               nanosleep (real delays desynchronize the event queue;
               model waits as scheduled events instead)
  unordered-iteration
               range-for over a std::unordered_{map,set}: iteration
               order is implementation-defined, so anything folded
               from it (digests, reports, schedules) diverges across
               platforms. Lookups are fine; iterate a sorted copy.

Suppression: append `// detlint: allow(<rule>)` to the offending line
(or the line above) with a justification nearby.

Usage: tools/detlint.py [--root DIR] [--json] [--sarif] [paths...]
Exit: 0 clean, 1 findings, 2 usage error.

--json emits {"schema_version": 1, "tool": "detlint", "findings":
[{"path", "line", "rule", "message"}, ...], "files": N} on stdout —
the same schema_version the C++ linters (jetlint, jetbound) stamp,
so downstream tooling can gate on one number.
"""

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import cpplex  # noqa: E402  (shared lexer/emitter scaffolding)

# Keep in lockstep with lint::kJsonSchemaVersion (src/lint/finding.hh).
SCHEMA_VERSION = cpplex.SCHEMA_VERSION

RULES = [
    ("wall-clock",
     re.compile(r"\b(gettimeofday|clock_gettime)\s*\(|"
                r"\btime\s*\(\s*(NULL|nullptr|0)?\s*\)|"
                r"\bstd::chrono::(system|steady|high_resolution)"
                r"_clock\b"),
     "wall-clock read in simulation code (use sim time / EventQueue"
     "::now())"),
    ("rand",
     re.compile(r"\b(std::)?(rand|srand)\s*\(|"
                r"\bstd::random_device\b|\bstd::mt19937"),
     "unseeded/global randomness (use the seeded sim::Rng)"),
    ("getenv",
     re.compile(r"\b(std::)?getenv\s*\("),
     "environment read (results must not depend on ambient state; "
     "read once at startup and annotate)"),
    ("sleep",
     re.compile(r"\bstd::this_thread::sleep_(for|until)\s*\(|"
                r"\b(usleep|nanosleep)\s*\("),
     "real delay in simulation code (desynchronizes the event queue; "
     "model waits as scheduled events)"),
]

allowed = cpplex.allow_matcher("detlint")
ALLOW_RE = allowed.regexp
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+"
    r"(\w+)\s*[;{=(]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*(?:const\s+)?auto\s*[&\s]"
                          r"[&\s]*\w+\s*:\s*(?:\w+\.)*(\w+)\s*\)")

# Shared comment/string stripper (tools/cpplex.py).
strip_noise = cpplex.strip_noise


def lint_file(path):
    """Return a list of {path, line, rule, message} findings."""
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"detlint: cannot read {path}: {e}", file=sys.stderr)
        return [{"path": path, "line": 0, "rule": "io-error",
                 "message": str(e)}]

    findings = []
    unordered_names = set()
    code_lines = []
    in_block = False
    for line in lines:
        code, in_block = strip_noise(line, in_block)
        code_lines.append(code)
        m = UNORDERED_DECL_RE.search(code)
        if m:
            unordered_names.add(m.group(1))

    for idx, code in enumerate(code_lines):
        for rule, pat, msg in RULES:
            if pat.search(code) and not allowed(lines, idx, rule):
                findings.append({"path": path, "line": idx + 1,
                                 "rule": rule, "message": msg})
        m = RANGE_FOR_RE.search(code)
        if m and m.group(1) in unordered_names:
            if not allowed(lines, idx, "unordered-iteration"):
                findings.append({
                    "path": path, "line": idx + 1,
                    "rule": "unordered-iteration",
                    "message": f"range-for over std::unordered "
                               f"container '{m.group(1)}': iteration "
                               f"order is implementation-defined"})
    return findings


def main():
    ap = argparse.ArgumentParser(
        description="determinism lint for jetsim src/")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as JSON on stdout")
    ap.add_argument("--sarif", action="store_true",
                    help="emit findings as a SARIF 2.1.0 log")
    ap.add_argument("paths", nargs="*",
                    help="files/dirs to lint (default: <root>/src)")
    args = ap.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    targets = args.paths or [os.path.join(root, "src")]

    files = cpplex.collect_files(targets)
    if not files:
        print("detlint: no input files", file=sys.stderr)
        return 2

    findings = []
    for f in sorted(files):
        findings.extend(lint_file(f))

    if args.sarif:
        sarif_rules = [(r, m) for r, _, m in RULES] + [
            ("unordered-iteration",
             "range-for over a std::unordered container: iteration "
             "order is implementation-defined"),
            ("io-error", "input file could not be read")]
        cpplex.print_sarif("detlint", sarif_rules, findings, root)
        return 1 if findings else 0

    if args.json:
        print(json.dumps({"schema_version": SCHEMA_VERSION,
                          "tool": "detlint",
                          "findings": findings,
                          "files": len(files)}, indent=2))
        return 1 if findings else 0

    for f in findings:
        print(f"{f['path']}:{f['line']}: [{f['rule']}] {f['message']}")
    if findings:
        print(f"detlint: {len(findings)} finding(s) in "
              f"{len(files)} files")
        return 1
    print(f"detlint: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
