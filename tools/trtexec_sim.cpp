/**
 * @file
 * trtexec_sim: the command-line tool the paper drives its phase-1
 * measurements with, over the simulated stack.
 *
 * Mirrors the real trtexec's workflow: build an engine for the
 * requested model/precision/batch, warm up, run a timed loop with a
 * pre-enqueued batch, and report throughput plus latency percentiles.
 * `--dumpProfile` additionally attaches the tracer and prints the
 * per-kernel profile (at the documented intrusion cost).
 *
 *   trtexec_sim --model=yolov8n --int8 --batch=4 --device=orin-nano
 *   trtexec_sim --model=resnet50 --precision=fp16 --dumpProfile
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "argparse.hh"
#include "cpu/scheduler.hh"
#include "gpu/engine.hh"
#include "models/zoo.hh"
#include "prof/jstats.hh"
#include "prof/nsight.hh"
#include "prof/report.hh"
#include "sim/event_queue.hh"
#include "soc/board.hh"
#include "workload/inference_process.hh"

using namespace jetsim;

int
main(int argc, char **argv)
{
    tools::ArgParser args("trtexec_sim",
                          "TensorRT-style inference benchmark over "
                          "the simulated Jetson stack");
    args.add("model", "resnet50",
             "resnet50 | fcn_resnet50 | yolov8n | resnet18 | "
             "mobilenet_v2");
    args.add("device", "orin-nano", "orin-nano | nano | a40");
    args.add("precision", "fp16", "int8 | fp16 | tf32 | fp32");
    args.add("int8", "false", "shorthand for --precision=int8");
    args.add("fp16", "false", "shorthand for --precision=fp16");
    args.add("batch", "1", "compiled batch size");
    args.add("duration", "3", "measured seconds");
    args.add("warmUp", "400", "warm-up milliseconds");
    args.add("useSpinWait", "true",
             "busy-spin in stream synchronisation");
    args.add("preEnqueue", "1", "extra batches kept in flight");
    args.add("dumpProfile", "false",
             "attach the tracer and print per-kernel timings");
    if (!args.parse(argc, argv))
        return 1;

    soc::Precision prec =
        soc::precisionFromName(args.str("precision"));
    if (args.boolean("int8"))
        prec = soc::Precision::Int8;
    else if (args.given("fp16") && args.boolean("fp16"))
        prec = soc::Precision::Fp16;

    sim::EventQueue eq;
    soc::Board board(soc::deviceByName(args.str("device")), eq);
    board.start();
    cpu::OsScheduler sched(board);
    gpu::GpuEngine gpu(board);

    const auto net = models::modelByName(args.str("model"));

    workload::ProcessConfig cfg;
    cfg.name = "trtexec";
    cfg.build.precision = prec;
    cfg.build.batch = args.intval("batch");
    cfg.pre_enqueue = args.intval("preEnqueue");
    cfg.spin_wait = args.boolean("useSpinWait");

    workload::InferenceProcess proc(board, sched, gpu, net, cfg);
    if (!proc.deploy()) {
        std::fprintf(stderr,
                     "error: engine does not fit in device memory "
                     "(%.0f MiB available)\n",
                     sim::toMiB(board.memory().available()));
        return 1;
    }

    const auto &engine = proc.engine();
    std::printf("=== Model ===\n");
    std::printf("model: %s, precision: %s, batch: %d\n",
                args.str("model").c_str(), soc::name(prec),
                cfg.build.batch);
    std::printf("engine: %zu kernels, weights %.1f MiB, activations "
                "%.1f MiB, workspace %.1f MiB\n",
                engine.kernels().size(),
                sim::toMiB(engine.weightBytes()),
                sim::toMiB(engine.activationBytes()),
                sim::toMiB(engine.workspaceBytes()));

    // Per-kernel aggregation for --dumpProfile.
    struct KStat
    {
        std::uint64_t calls = 0;
        double total_us = 0;
    };
    std::map<const gpu::KernelDesc *, KStat> profile;
    std::unique_ptr<prof::NsightTracer> tracer;
    if (args.boolean("dumpProfile")) {
        tracer = std::make_unique<prof::NsightTracer>(board, gpu);
        tracer->attach();
        gpu.setTraceHook([&](const gpu::KernelRecord &rec) {
            auto &s = profile[rec.desc];
            ++s.calls;
            s.total_us += sim::toUsec(rec.end - rec.start);
        });
    }

    prof::JStatsSampler jstats(board, sim::msec(100));
    jstats.start();

    proc.start();
    eq.runUntil(sim::msec(args.intval("warmUp")));
    proc.beginMeasurement();
    jstats.reset();
    profile.clear();
    eq.runUntil(eq.now() + sim::sec(args.dbl("duration")));
    proc.endMeasurement();
    proc.stopEnqueue();

    const auto &lat = proc.latencyCdf();
    std::printf("\n=== Performance summary ===\n");
    std::printf("Throughput: %.1f qps (%.1f img/s)\n",
                proc.throughput() / cfg.build.batch,
                proc.throughput());
    if (!lat.empty()) {
        std::printf("Latency: min = %.3f ms, mean = %.3f ms, median "
                    "= %.3f ms, p99 = %.3f ms, max = %.3f ms\n",
                    lat.min() / 1e6, lat.mean() / 1e6,
                    lat.median() / 1e6, lat.quantile(0.99) / 1e6,
                    lat.max() / 1e6);
    }
    std::printf("Enqueue span: %.3f ms, launch API per EC: %.3f ms, "
                "sync span: %.3f ms\n",
                proc.enqueueSpan().mean() / 1e6,
                proc.launchApiPerEc().mean() / 1e6,
                proc.syncSpan().mean() / 1e6);
    std::printf("Board: %.2f W avg / %.2f W max, GPU util %.1f%%, "
                "memory %.1f%%\n",
                jstats.avgPowerW(), jstats.maxPowerW(),
                jstats.avgGpuUtilPct(),
                board.memory().usagePercent());
    if (tracer)
        std::printf("(profiler attached: expect ~50%% lower "
                    "throughput than phase 1)\n");

    if (tracer && !profile.empty()) {
        std::printf("\n=== Profile (%llu kernels) ===\n",
                    static_cast<unsigned long long>(
                        tracer->kernelCount()));
        std::vector<std::pair<const gpu::KernelDesc *, KStat>> rows(
            profile.begin(), profile.end());
        std::sort(rows.begin(), rows.end(),
                  [](const auto &a, const auto &b) {
                      return a.second.total_us > b.second.total_us;
                  });
        prof::Table t({"kernel", "calls", "total (us)", "avg (us)",
                       "prec", "tc"});
        int shown = 0;
        for (const auto &[k, s] : rows) {
            if (++shown > 15)
                break;
            t.addRow({k->name, std::to_string(s.calls),
                      prof::fmt(s.total_us, 0),
                      prof::fmt(s.total_us / s.calls, 1),
                      soc::name(k->prec), k->tc ? "yes" : "no"});
        }
        t.print(std::cout);
    }
    return 0;
}
