#!/usr/bin/env python3
"""cpplex: shared C++ lexical scaffolding for the jetsim analyzers.

jetrace (concurrency discipline), jethot (hot-path discipline) and
detlint (determinism lint) all audit src/ at the source level with
the same idiom-driven lexical engine: strip comments and strings,
walk brace scopes statement by statement, and classify what remains.
This module is the single home of that engine so the three tools
cannot drift — the noise stripper, the suppression-comment matcher,
the scope walker, the file collector, the Tarjan SCC pass over
capability/call graphs, and the SARIF 2.1.0 emitter all live here and
are imported by the tools.

Nothing in this module knows about any specific rule: each tool
supplies its own regexes and callbacks. The self-test lives in
tests/tools/cpplex_test.py (wired into ctest).
"""

import json
import os
import re

# Keep in lockstep with lint::kJsonSchemaVersion (src/lint/finding.hh)
# and with the SCHEMA_VERSION the tools stamp into --json output.
SCHEMA_VERSION = 1

STRING_RE = re.compile(r'"(?:\\.|[^"\\])*"|' r"'(?:\\.|[^'\\])*'")

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "do",
                    "else", "try", "return", "sizeof", "alignof",
                    "decltype", "new", "delete", "case", "default"}

#: C++ source extensions the analyzers consider.
SOURCE_EXTS = (".cc", ".hh", ".cpp", ".hpp")

#: Annotation macros from src/core/hot_annotations.hh. They expand to
#: nothing in every build; classify_open strips them so an annotated
#: definition still parses as a function (JETSIM_COLD_OK's parentheses
#: would otherwise look like the function's own).
ANNOT_MACRO_RE = re.compile(
    r"\bJETSIM_(?:COLD_OK\s*\([^)]*\)|HOT_BOUNDARY\b|HOT\b)")


def strip_noise(line, in_block):
    """Remove strings/comments; returns (code, still_in_block)."""
    if in_block:
        end = line.find("*/")
        if end < 0:
            return "", True
        line = line[end + 2:]
    line = STRING_RE.sub('""', line)
    out = []
    i = 0
    while i < len(line):
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            end = line.find("*/", i + 2)
            if end < 0:
                return "".join(out), True
            i = end + 2
            continue
        out.append(line[i])
        i += 1
    return "".join(out), False


def strip_file(raw_lines):
    """Noise-strip a whole file; returns the code-line list."""
    code_lines = []
    in_block = False
    for line in raw_lines:
        code, in_block = strip_noise(line, in_block)
        code_lines.append(code)
    return code_lines


def allow_matcher(tool):
    """Build the `// <tool>: allow(rule-a, rule-b)` suppression
    matcher for one tool. Returns allowed(raw_lines, idx, rule): True
    when line idx or the one above carries allow(rule)."""
    allow_re = re.compile(tool + r":\s*allow\(([a-z-]+(?:\s*,\s*"
                                 r"[a-z-]+)*)\)")

    def allowed(raw_lines, idx, rule):
        for li in (idx, idx - 1):
            if 0 <= li < len(raw_lines):
                m = allow_re.search(raw_lines[li])
                if m and rule in [r.strip() for r in
                                  m.group(1).split(",")]:
                    return True
        return False

    allowed.regexp = allow_re
    return allowed


def collect_files(targets):
    """Expand files/directories into the sorted C++ source list."""
    files = []
    for t in targets:
        if os.path.isfile(t):
            files.append(t)
        else:
            for dirpath, _, names in os.walk(t):
                for n in sorted(names):
                    if n.endswith(SOURCE_EXTS):
                        files.append(os.path.join(dirpath, n))
    return sorted(files)


class Scope:
    __slots__ = ("kind", "name", "held_before")

    def __init__(self, kind, name, held_before=0):
        self.kind = kind    # namespace | class | function | block
        self.name = name
        self.held_before = held_before  # tool-defined scope payload


def classify_open(text, lineno):
    """Classify the declaration text preceding a `{`: namespace,
    class/struct/enum, function (incl. lambdas), or plain block."""
    del lineno  # kept for signature stability across tools
    text = ANNOT_MACRO_RE.sub("", text).strip()
    if not text:
        return Scope("block", "")
    m = re.match(r"^(?:inline\s+)?namespace\b\s*([\w:]*)", text)
    if m:
        return Scope("namespace", m.group(1) or "<anon>")
    m = re.search(r"\b(class|struct|union)\s+(?:JETSIM_\w+"
                  r"\s*\([^)]*\)\s*)?(\w+)?", text)
    if m and "(" not in text.split(m.group(1))[0]:
        return Scope("class", m.group(2) or "<anon>")
    if re.search(r"\benum\b", text):
        return Scope("class", "<enum>")
    if "(" in text and ")" in text:
        first = re.search(r"([\w:~]+)\s*\(", text)
        name = first.group(1) if first else ""
        base = name.split("::")[-1] if name else ""
        if base in CONTROL_KEYWORDS:
            return Scope("block", "")
        if "=" in text.split("(")[0] and "]" not in text:
            return Scope("block", "")  # brace initializer
        fname = name if name else "<lambda>"
        return Scope("function", fname)
    if "]" in text:           # lambda introducer without parens
        return Scope("function", "<lambda>")
    if re.match(r"^(do|else|try)\b", text):
        return Scope("block", "")
    return Scope("block", "")


class Walker:
    """Char-by-char scope/statement walker over noise-stripped code.

    Callbacks (all optional):
      on_line(code, idx)            before each line's chars
      on_open(scope, sigtext, lineno)  after a `{` pushed its Scope;
                                    sigtext is the declaration text
                                    accumulated since the last ;{}
      on_close(scope)               after a `}` popped its Scope
      on_statement(stmt, lineno)    a statement completed at a `;`

    `scopes` is the live scope stack; `pending_start` is the 1-based
    line where the current pending text began (statement spans).
    Statement-level resolution matters: a line-level pass would miss
    locks/calls inside single-line function bodies.
    """

    def __init__(self, on_line=None, on_open=None, on_close=None,
                 on_statement=None):
        self.on_line = on_line
        self.on_open = on_open
        self.on_close = on_close
        self.on_statement = on_statement
        self.scopes = []
        self.pending_start = 1

    def run(self, code_lines):
        self.scopes = []
        pending = ""
        self.pending_start = 1
        # Parenthesis nesting within the current statement: a `;`
        # inside parens (for-loop headers, C++17 if-initializers) is
        # not a statement end — splitting there hands classify_open a
        # truncated tail like `!ts.empty())`, which misreads as a
        # function definition. Depth is saved across scope opens so a
        # lambda body inside an argument list restores correctly.
        depth = 0
        depth_stack = []
        for idx, code in enumerate(code_lines):
            if self.on_line:
                self.on_line(code, idx)
            for ch in code:
                if not pending.strip():
                    self.pending_start = idx + 1
                if ch == "{":
                    sc = classify_open(pending, idx + 1)
                    self.scopes.append(sc)
                    if self.on_open:
                        self.on_open(sc, pending, idx + 1)
                    pending = ""
                    depth_stack.append(depth)
                    depth = 0
                elif ch == "}":
                    if self.scopes:
                        sc = self.scopes.pop()
                        if self.on_close:
                            self.on_close(sc)
                    pending = ""
                    depth = depth_stack.pop() if depth_stack else 0
                elif ch == ";" and depth == 0:
                    if self.on_statement:
                        self.on_statement(pending, idx + 1)
                    pending = ""
                else:
                    if ch == "(":
                        depth += 1
                    elif ch == ")" and depth:
                        depth -= 1
                    pending += ch
            pending += " "

    def fn_depth(self):
        return sum(1 for s in self.scopes if s.kind == "function")

    def in_class(self):
        return any(s.kind == "class" for s in self.scopes)


def find_cycles(nodes, edges):
    """Strongly connected components with >1 node (or a self-edge).
    Tarjan, iterative; `edges` is a dict/set of (a, b) pairs."""
    adj = {n: [] for n in nodes}
    for (a, b) in edges:
        adj[a].append(b)
    index = {}
    low = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]

    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(adj[root]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(adj[nxt])))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                if len(scc) > 1 or (node, node) in edges:
                    sccs.append(sorted(scc))
    return sccs


def to_sarif(tool, rules, findings, root=None):
    """Render findings as a SARIF 2.1.0 log (the shared emitter the
    jethot/jetrace/detlint `--sarif` flags print), so editors and CI
    annotate the offending lines inline.

    `rules` is the tool's [(id, description), ...] table; `findings`
    are the tool's finding dicts ({path, line, rule, message}, extra
    keys preserved under properties). Paths are emitted relative to
    @p root when given (SARIF wants URIs, not host paths)."""
    rule_ids = [r[0] for r in rules]
    results = []
    for f in findings:
        path = f["path"]
        if root:
            try:
                path = os.path.relpath(path, root)
            except ValueError:
                pass
        res = {
            "ruleId": f["rule"],
            "level": "error",
            "message": {"text": f["message"]},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": path.replace(os.sep, "/")},
                    "region": {"startLine": max(1, f.get("line", 1))},
                },
            }],
        }
        if f["rule"] in rule_ids:
            res["ruleIndex"] = rule_ids.index(f["rule"])
        extra = {k: v for k, v in f.items()
                 if k not in ("path", "line", "rule", "message")}
        if extra:
            res["properties"] = extra
        results.append(res)
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": tool,
                "informationUri":
                    "https://github.com/jetsim/jetsim",
                "rules": [{"id": rid,
                           "shortDescription": {"text": desc}}
                          for rid, desc in rules],
            }},
            "results": results,
        }],
    }


def print_sarif(tool, rules, findings, root=None):
    print(json.dumps(to_sarif(tool, rules, findings, root), indent=2))
