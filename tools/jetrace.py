#!/usr/bin/env python3
"""jetrace: source-level concurrency-discipline auditor for jetsim.

The verification stack runs dynamic (JetSan/TSan), schedule-space
(jetmc) and spec-level (jetlint/jetbound) passes; jetrace completes
it at the *source* level. It audits the two contracts the sharded
event core will be written against:

  shared-state inventory
      Every non-const global, namespace-scope, function-local-static
      or class-static mutable object in src/ must be exactly one of
        - guarded:   its declaration carries JETSIM_GUARDED_BY(cap)
                     or a `// jetrace: guarded(<cap>)` justification
                     (for self-synchronized objects whose members are
                     individually guarded),
        - atomic:    std::atomic / core::Mutex / std::once_flag /
                     thread_local (synchronization is the type),
        - confined:  `// jetrace: confined(<thread>)` with the owning
                     thread named.
      Anything else is an `unannotated-global` finding.

  static lock-acquisition order
      Lock scopes are recognised from the mandatory core::LockGuard
      idiom (raw std::mutex / std::lock_guard / std::unique_lock in
      src/ outside core/mutex.hh is itself a `raw-mutex` finding —
      that rule is what keeps this analysis sound: an unwrapped lock
      would be invisible to it and to -Wthread-safety). Acquiring
      capability B while holding A adds the edge A -> B; edges are
      propagated through the static call graph to a fixpoint, and any
      cycle is reported as a potential deadlock (`lock-cycle`).

  shard locks are leaves
      The sharded event core's per-shard inbox locks (capabilities
      named like `shard_mu_`) must be leaves of the lock graph
      (DESIGN.md §4h/§4i): the epoch barrier spins while shards drain
      inboxes, so a shard lock entangled with any other capability
      can stall every worker. Any edge *out* of a shard capability —
      direct or through the call graph — is a `shard-lock-not-leaf`
      finding, even when the graph stays acyclic.

`--selftest` runs both analyses on a C++ rendition of jetmc's seeded
two-lock model (src/mc/toylock.*): the inverted variant must produce
the A<->B cycle, the well-ordered variant must not. With
`--jetmc-ce=FILE` the verdicts are cross-checked against the
counterexample jetmc found dynamically: the model the schedule-space
checker deadlocked must be the inverted one — static and dynamic
analyses must agree on which discipline is broken.

Backends: when the libclang Python bindings are importable
(`--backend=libclang` or `auto`), the shared-state inventory is taken
from a real AST walk (VarDecl storage classes); the lock graph always
comes from the idiom-driven lexical engine, which the core::Mutex
discipline makes exact. Without bindings (this container ships none)
`auto` falls back to the lexical inventory, which is tested
fixture-by-fixture in tests/tools/jetrace_test.py.

The lexical engine itself (noise stripping, scope walking, Tarjan,
SARIF) is shared with jethot/detlint via tools/cpplex.py.

Usage: tools/jetrace.py [--root DIR] [--json] [--sarif] [--dot]
                        [--selftest] [--jetmc-ce FILE]
                        [--backend auto|lex|libclang]
                        [--list-rules] [paths...]
Exit: 0 clean, 1 findings (or failed self-test), 2 usage error.

--json emits {"schema_version": 1, "tool": "jetrace", "findings":
[...], "files": N, "inventory": {...}, "lock_graph": {...}} — the
same schema_version jetlint/jetbound/detlint stamp. --sarif emits the
same findings as a SARIF 2.1.0 log for editor/CI annotation.
"""

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import cpplex  # noqa: E402

# Keep in lockstep with lint::kJsonSchemaVersion (src/lint/finding.hh).
SCHEMA_VERSION = cpplex.SCHEMA_VERSION

RULES = [
    ("unannotated-global",
     "non-const global/static state with no guarded/atomic/confined "
     "classification"),
    ("lock-cycle",
     "cycle in the static lock-acquisition-order graph (potential "
     "deadlock)"),
    ("raw-mutex",
     "raw std:: lock primitive outside core/mutex.hh (invisible to "
     "-Wthread-safety and to this audit; use core::Mutex/LockGuard)"),
    ("unknown-capability",
     "JETSIM_GUARDED_BY names a capability that is not a declared "
     "core::Mutex in this file"),
    ("shard-lock-not-leaf",
     "lock acquired while a shard inbox lock (capability named "
     "shard*mu*) is held; shard locks must be lock-graph leaves "
     "(DESIGN.md §4h/§4i)"),
]

# Capabilities the leaf rule applies to: the sharded event core's
# per-shard inbox locks (shard_mu_, shard_mutex, ...).
SHARD_CAP_RE = re.compile(r"shard\w*mu", re.IGNORECASE)

allowed = cpplex.allow_matcher("jetrace")
ALLOW_RE = allowed.regexp
CONFINED_RE = re.compile(r"jetrace:\s*confined\(([^)]+)\)")
GUARDED_CMT_RE = re.compile(r"jetrace:\s*guarded\(([^)]+)\)")

GUARDED_BY_RE = re.compile(r"\bJETSIM_(?:PT_)?GUARDED_BY\s*\(\s*"
                           r"([^)]+?)\s*\)")
LOCK_GUARD_RE = re.compile(r"\b(?:core::)?LockGuard\s+\w+\s*[({]\s*"
                           r"([^;]+?)\s*[)}]\s*;")
REQUIRES_RE = re.compile(r"\bJETSIM_REQUIRES\s*\(\s*([^)]+?)\s*\)")
RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|timed_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable(_any)?)\b")
MUTEX_DECL_RE = re.compile(r"\b(?:core::)?Mutex\s+(\w+)\s*;")

# Types whose synchronization is intrinsic: owning one is the
# annotation.
SYNC_TYPE_RE = re.compile(r"\b(std::atomic\b|std::atomic_\w+|"
                          r"(core::)?Mutex\b|std::once_flag\b|"
                          r"std::mutex\b)")

# Namespace-scope variable definition (single logical line).
NSVAR_RE = re.compile(
    r"^\s*"
    r"(?P<quals>(?:(?:inline|static|extern|thread_local|constinit|"
    r"mutable)\s+)*)"
    r"(?P<type>(?:[\w:]+(?:\s*<[^;]*>)?(?:\s*[*&])*\s+)+)"
    r"(?P<name>[A-Za-z_]\w*)\s*"
    r"(?:\{[^;]*\}|=[^;]*)?;")

# `static <type> <name> [= ... | { ... } | ;]` at class/function scope.
LOCAL_STATIC_RE = re.compile(
    r"\bstatic\s+(?P<decl>[^;=({]*?)(?P<name>[A-Za-z_]\w*)\s*"
    r"(?:=|\{|;)")

CONTROL_KEYWORDS = cpplex.CONTROL_KEYWORDS
NONVAR_WORDS = re.compile(
    r"\b(const|constexpr|using|typedef|namespace|class|struct|enum|"
    r"union|template|operator|return|friend|throw|goto|public|"
    r"private|protected)\b")

strip_noise = cpplex.strip_noise
collect_files = cpplex.collect_files
find_cycles = cpplex.find_cycles


def annotation_comment(raw_lines, idx):
    """confined()/guarded() justification on line idx or the one
    above; returns ('confined'|'guarded', arg) or None."""
    for li in (idx, idx - 1):
        if 0 <= li < len(raw_lines):
            m = CONFINED_RE.search(raw_lines[li])
            if m:
                return ("confined", m.group(1).strip())
            m = GUARDED_CMT_RE.search(raw_lines[li])
            if m:
                return ("guarded", m.group(1).strip())
    return None


def cap_name(expr):
    """Normalize a lock expression to a capability id: the final
    member component ('own.m' -> 'm', 'this->mu_' -> 'mu_')."""
    expr = expr.strip()
    expr = re.sub(r"\[[^\]]*\]", "", expr)  # queues_[w].m -> queues_.m
    for sep in ("->", "."):
        if sep in expr:
            expr = expr.rsplit(sep, 1)[1]
    return expr.strip()


class FileAnalysis:
    """Per-file lexical analysis: inventory candidates, lock events,
    call edges, annotation counts."""

    def __init__(self, path):
        self.path = path
        self.globals = []       # (line, name, classification, detail)
        self.raw_mutex = []     # (line, token)
        self.guarded_by = []    # (line, cap)
        self.mutex_decls = set()
        self.functions = {}     # name -> {"acquires": [(cap, line,
                                #          held_at_acq)], "calls":
                                #          [(callee, line, held)]}
        self.capability_count = 0
        self.confined = []      # (line, name, thread)


def analyze_file(path, relpath):
    with open(path, encoding="utf-8", errors="replace") as f:
        raw_lines = f.read().splitlines()

    fa = FileAnalysis(relpath)
    code_lines = cpplex.strip_file(raw_lines)
    for code in code_lines:
        for m in MUTEX_DECL_RE.finditer(code):
            fa.mutex_decls.add(m.group(1))
            fa.capability_count += 1

    cur_fn = None       # innermost function record
    held = []           # [(cap, scope_depth)]
    is_mutex_hh = relpath.replace("\\", "/").endswith("core/mutex.hh")
    w = cpplex.Walker()

    def enter_function(scope, sigtext, lineno):
        nonlocal cur_fn
        base = scope.name.split("::")[-1]
        rec = fa.functions.setdefault(
            base, {"acquires": [], "calls": []})
        cur_fn = rec
        for m in REQUIRES_RE.finditer(sigtext):
            for cap in m.group(1).split(","):
                c = cap_name(cap.strip().lstrip("!"))
                if not cap.strip().startswith("!"):
                    held.append((c, len(w.scopes)))

    def record_calls(stmt, lineno):
        """Calls made under held locks (cross-function edges)."""
        for m in re.finditer(r"([\w~:]+)\s*\(", stmt):
            callee = m.group(1).split("::")[-1]
            if callee in CONTROL_KEYWORDS or callee == "LockGuard":
                continue
            cur_fn["calls"].append(
                (callee, lineno, [c for c, _ in held]))

    def classify_candidate(name, typetext, text, idx):
        """File the inventory verdict for one mutable static/global:
        text is the declaration, idx the 0-based line for comment
        justification lookup."""
        line_no = idx + 1
        if "thread_local" in text:
            fa.globals.append((line_no, name, "thread_local", ""))
        elif SYNC_TYPE_RE.search(typetext) or SYNC_TYPE_RE.search(text):
            fa.globals.append((line_no, name, "atomic", ""))
        elif GUARDED_BY_RE.search(text):
            gb = GUARDED_BY_RE.search(text)
            fa.globals.append(
                (line_no, name, "guarded", cap_name(gb.group(1))))
        else:
            ann = annotation_comment(raw_lines, idx)
            if ann:
                fa.globals.append((line_no, name) + ann)
                if ann[0] == "confined":
                    fa.confined.append((line_no, name, ann[1]))
            elif allowed(raw_lines, idx, "unannotated-global"):
                fa.globals.append((line_no, name, "allowed", ""))
            else:
                fa.globals.append((line_no, name, "unannotated", ""))

    def on_line(code, idx):
        # Findings that don't need scope context.
        if not is_mutex_hh:
            m = RAW_MUTEX_RE.search(code)
            if m and not allowed(raw_lines, idx, "raw-mutex"):
                fa.raw_mutex.append((idx + 1, m.group(0)))
        for m in GUARDED_BY_RE.finditer(code):
            fa.guarded_by.append((idx + 1, cap_name(m.group(1))))

        # Inventory: namespace-scope declarations (line-based; static
        # locals and class statics are handled statement-wise below,
        # where the scope stack is current). Attribute macros are
        # stripped before matching so JETSIM_GUARDED_BY's parentheses
        # don't make the declaration look like a function.
        if not any(s.kind in ("class", "function") for s in w.scopes):
            bare = re.sub(r"\bJETSIM_\w+\s*\([^)]*\)", "", code)
            m = NSVAR_RE.match(bare)
            if (m and "(" not in bare and
                    not NONVAR_WORDS.search(bare) and
                    "extern" not in m.group("quals")):
                classify_candidate(m.group("name"),
                                   m.group("type") + m.group("quals"),
                                   code, idx)

    def on_open(sc, pending, lineno):
        if sc.kind == "function":
            sc.held_before = len(held)
            enter_function(sc, pending, lineno)
        else:
            # Calls in a control condition (`if (f()) {`)
            # still happen under the held set.
            if cur_fn is not None and held:
                record_calls(pending, lineno)

    def on_close(sc):
        nonlocal cur_fn
        # Locks acquired inside this scope die with it.
        while held and held[-1][1] > len(w.scopes):
            held.pop()
        if sc.kind == "function":
            while held and len(held) > sc.held_before:
                held.pop()
            cur_fn = None
            for s in reversed(w.scopes):
                if s.kind == "function":
                    base = s.name.split("::")[-1]
                    cur_fn = fa.functions.get(base)
                    break

    def on_statement(stmt, lineno):
        """Statement text as it completes at a `;`, with the scope
        and held-set state *at that point* (a line-level pass would
        miss locks inside single-line function bodies)."""
        in_class = w.in_class()
        in_fn = w.fn_depth() > 0
        if in_class or in_fn:
            m = LOCAL_STATIC_RE.search(stmt + ";")
            if m and not re.search(r"\b(const|constexpr|constinit|"
                                   r"static_assert|static_cast)\b",
                                   stmt):
                classify_candidate(m.group("name"), m.group("decl"),
                                   stmt, lineno - 1)
        if cur_fn is None:
            return
        lg = LOCK_GUARD_RE.search(stmt + ";")
        if lg:
            cap = cap_name(lg.group(1))
            cur_fn["acquires"].append(
                (cap, lineno, [c for c, _ in held]))
            held.append((cap, len(w.scopes)))
            return
        if held:
            record_calls(stmt, lineno)

    w.on_line = on_line
    w.on_open = on_open
    w.on_close = on_close
    w.on_statement = on_statement
    w.run(code_lines)

    return fa, raw_lines


def build_lock_graph(analyses):
    """Merge per-file lock events into a capability graph; propagate
    acquisitions through the call graph to a fixpoint."""
    direct = {}    # fn -> set(caps)
    edges = {}     # (a, b) -> (path, line)
    calls = {}     # fn -> [(callee, line, held, path)]
    for fa in analyses:
        for fn, rec in fa.functions.items():
            direct.setdefault(fn, set())
            calls.setdefault(fn, [])
            for cap, line, held_at in rec["acquires"]:
                direct[fn].add(cap)
                for h in held_at:
                    if h != cap:
                        edges.setdefault((h, cap), (fa.path, line))
            for callee, line, held_at in rec["calls"]:
                calls[fn].append((callee, line, held_at, fa.path))

    # effects(fn): caps fn may acquire, transitively.
    effects = {fn: set(caps) for fn, caps in direct.items()}
    changed = True
    while changed:
        changed = False
        for fn, cls in calls.items():
            for callee, _, _, _ in cls:
                if callee in effects and callee != fn:
                    before = len(effects[fn])
                    effects[fn] |= effects[callee]
                    if len(effects[fn]) != before:
                        changed = True

    for fn, cls in calls.items():
        for callee, line, held_at, path in cls:
            for cap in effects.get(callee, ()):
                for h in held_at:
                    if h != cap:
                        edges.setdefault((h, cap), (path, line))

    nodes = sorted({n for e in edges for n in e} |
                   {c for caps in direct.values() for c in caps})
    return nodes, edges


def try_libclang():
    try:
        import clang.cindex as ci  # noqa: F401
        return ci
    except Exception:
        return None


def libclang_inventory(ci, path, include_dir):
    """AST-walk inventory of static-storage VarDecls (libclang
    backend). Returns [(line, name)] candidates; classification still
    uses the source text, which carries the annotations."""
    tu_index = ci.Index.create()
    tu = tu_index.parse(path, args=["-std=c++20", "-x", "c++",
                                    "-I" + include_dir])
    out = []
    def walk(cur):
        for c in cur.get_children():
            if str(c.location.file) != path:
                continue
            if c.kind == ci.CursorKind.VAR_DECL:
                sc = c.storage_class
                at_ns = c.semantic_parent.kind in (
                    ci.CursorKind.TRANSLATION_UNIT,
                    ci.CursorKind.NAMESPACE)
                if at_ns or sc == ci.StorageClass.STATIC:
                    t = c.type.spelling
                    if "const" not in t:
                        out.append((c.location.line, c.spelling))
            walk(c)
    walk(tu.cursor)
    return out


def audit(files, root):
    findings = []
    analyses = []
    inventory = {"capabilities": 0, "guarded": 0, "atomic": 0,
                 "confined": 0, "thread_local": 0, "allowed": 0,
                 "guarded_fields": 0, "globals": 0}
    raw_by_path = {}

    for path in files:
        rel = os.path.relpath(path, root) if root else path
        fa, raw = analyze_file(path, rel)
        analyses.append(fa)
        raw_by_path[rel] = raw
        inventory["capabilities"] += fa.capability_count
        inventory["guarded_fields"] += len(fa.guarded_by)
        for line, name, cls, detail in fa.globals:
            inventory["globals"] += 1
            if cls == "unannotated":
                findings.append({
                    "path": rel, "line": line,
                    "rule": "unannotated-global",
                    "message": f"'{name}' is mutable shared state "
                               f"with no guarded/atomic/confined "
                               f"classification (annotate with "
                               f"JETSIM_GUARDED_BY, make it atomic, "
                               f"or justify `// jetrace: "
                               f"confined(<thread>)`)"})
            else:
                key = {"guarded": "guarded", "atomic": "atomic",
                       "confined": "confined",
                       "thread_local": "thread_local",
                       "allowed": "allowed"}[cls]
                inventory[key] += 1
        for line, tok in fa.raw_mutex:
            findings.append({
                "path": rel, "line": line, "rule": "raw-mutex",
                "message": f"{tok} bypasses core::Mutex/LockGuard; "
                           f"the lock becomes invisible to "
                           f"-Wthread-safety and the jetrace lock "
                           f"graph"})
        for line, cap in fa.guarded_by:
            if fa.mutex_decls and cap not in fa.mutex_decls:
                if not allowed(raw_by_path[rel], line - 1,
                               "unknown-capability"):
                    findings.append({
                        "path": rel, "line": line,
                        "rule": "unknown-capability",
                        "message": f"JETSIM_GUARDED_BY({cap}) does "
                                   f"not name a core::Mutex declared "
                                   f"in this file"})

    nodes, edges = build_lock_graph(analyses)

    # Leaf discipline for the sharded core: no capability may be
    # acquired under a shard inbox lock. Call-graph propagation has
    # already folded indirect acquisitions into `edges`, so every
    # violation — direct or transitive — is an edge out of a shard
    # capability.
    for (a, b), (path, line) in sorted(edges.items()):
        if not SHARD_CAP_RE.search(a):
            continue
        raw = raw_by_path.get(path)
        if raw is not None and allowed(raw, line - 1,
                                       "shard-lock-not-leaf"):
            continue
        findings.append({
            "path": path, "line": line,
            "rule": "shard-lock-not-leaf",
            "message": f"'{b}' is acquired while shard lock '{a}' "
                       f"is held; shard inbox locks must be leaves "
                       f"of the lock graph (DESIGN.md §4h/§4i) — "
                       f"the epoch barrier spins on shards whose "
                       f"inbox lock is entangled with another "
                       f"capability"})

    cycles = find_cycles(nodes, edges)
    for cyc in cycles:
        involved = [(a, b) for (a, b) in edges
                    if a in cyc and b in cyc]
        where = "; ".join(
            f"{a}->{b} at {edges[(a, b)][0]}:{edges[(a, b)][1]}"
            for a, b in sorted(involved))
        findings.append({
            "path": edges[involved[0]][0] if involved else "",
            "line": edges[involved[0]][1] if involved else 0,
            "rule": "lock-cycle",
            "message": f"lock-order cycle over {{{', '.join(cyc)}}} "
                       f"({where}): two threads taking these locks "
                       f"in opposite orders can deadlock"})

    findings.sort(key=lambda f: (f["path"], f["line"], f["rule"]))
    lock_graph = {
        "nodes": nodes,
        "edges": [{"from": a, "to": b, "path": p, "line": ln}
                  for (a, b), (p, ln) in sorted(edges.items())],
        "acyclic": not cycles,
    }
    return findings, inventory, lock_graph


# --- self-test ---------------------------------------------------------

# C++ rendition of src/mc/toylock: the same two-lock discipline jetmc
# model-checks dynamically, expressed in the core::Mutex idiom jetrace
# audits statically. Worker programs mirror ToyLockModel::run.
SELFTEST_COMMON = """\
#include "core/mutex.hh"
using jetsim::core::LockGuard;
using jetsim::core::Mutex;

Mutex lockA;
Mutex lockB;
int shared_ab JETSIM_GUARDED_BY(lockA);
"""

SELFTEST_ORDERED = SELFTEST_COMMON + """
void worker1() { LockGuard a(lockA); LockGuard b(lockB); ++shared_ab; }
void worker2() { LockGuard a(lockA); LockGuard b(lockB); ++shared_ab; }
"""

SELFTEST_INVERTED = SELFTEST_COMMON + """
void worker1() { LockGuard a(lockA); LockGuard b(lockB); ++shared_ab; }
void worker2() { LockGuard b(lockB); LockGuard a(lockA); }
"""

# Shard-leaf fixtures: a miniature of the sharded engine's inbox
# lock. The leaf variant only ever takes shard_mu_ innermost (edges
# *into* the shard capability are fine); the non-leaf variant drains
# the inbox while reaching for the stats lock — acyclic, yet exactly
# the entanglement the epoch barrier cannot tolerate.
SELFTEST_SHARD_COMMON = """\
#include "core/mutex.hh"
using jetsim::core::LockGuard;
using jetsim::core::Mutex;

Mutex shard_mu_;
Mutex stats_mu;
int inbox JETSIM_GUARDED_BY(shard_mu_);
int stats JETSIM_GUARDED_BY(stats_mu);
"""

SELFTEST_SHARD_LEAF = SELFTEST_SHARD_COMMON + """
void push() { LockGuard g(shard_mu_); ++inbox; }
void report() { LockGuard s(stats_mu); LockGuard g(shard_mu_);
                stats += inbox; }
"""

SELFTEST_SHARD_NONLEAF = SELFTEST_SHARD_COMMON + """
void push() { LockGuard g(shard_mu_); ++inbox; }
void drain() { LockGuard g(shard_mu_); LockGuard s(stats_mu);
               stats += inbox; }
"""

# MPSC-inbox fixtures: a miniature of the lock-free shard inbox ring
# (src/sim/msg_ring.hh) that replaced the shard_mu_ mutex inbox in
# DESIGN.md §4i. The ring variant is pure std::atomic — it must audit
# clean AND contribute zero lock-graph capabilities, because the point
# of the replacement is that cross-shard posting no longer introduces
# any lock the epoch barrier could entangle with. The mutexed variant
# reintroduces the old raw std::mutex inbox; raw-mutex must flag both
# the declaration and the lock site before that lock can re-enter the
# engine invisible to the graph.
SELFTEST_MPSC_RING = """\
#include <atomic>
#include <cstdint>

std::atomic<std::uint64_t> ring_seq{0};
// jetrace: confined(handoff via ring_seq release/acquire pair)
std::uint64_t ring_payload = 0;
std::atomic<std::uint64_t> ring_tail{0};
std::atomic<std::uint64_t> msgs_pending{0};

void push(std::uint64_t v)
{
    const std::uint64_t pos =
        ring_tail.fetch_add(1, std::memory_order_acq_rel);
    ring_payload = v;
    ring_seq.store(pos + 1, std::memory_order_release);
    msgs_pending.fetch_add(1, std::memory_order_release);
}

std::uint64_t drainOne(std::uint64_t head)
{
    if (ring_seq.load(std::memory_order_acquire) != head + 1)
        return 0;
    msgs_pending.fetch_sub(1, std::memory_order_relaxed);
    return ring_payload;
}
"""

SELFTEST_MPSC_RAW_MUTEX = """\
#include <cstdint>
#include <mutex>

std::mutex shard_mu_;
std::uint64_t inbox JETSIM_GUARDED_BY(shard_mu_);
std::uint64_t inbox_n JETSIM_GUARDED_BY(shard_mu_);

void push(std::uint64_t v)
{
    std::lock_guard<std::mutex> g(shard_mu_);
    inbox = v + inbox_n++;
}
"""


def selftest(jetmc_ce):
    import tempfile
    ok = True
    with tempfile.TemporaryDirectory() as td:
        for name, src, want_cycle in [
                ("toylock_ordered.cc", SELFTEST_ORDERED, False),
                ("toylock_inverted.cc", SELFTEST_INVERTED, True)]:
            p = os.path.join(td, name)
            with open(p, "w", encoding="utf-8") as f:
                f.write(src)
            findings, _, graph = audit([p], td)
            cycles = [f for f in findings if f["rule"] == "lock-cycle"]
            if want_cycle and not cycles:
                print(f"jetrace selftest: FAILED — no lock-cycle "
                      f"reported for {name}")
                ok = False
            elif not want_cycle and cycles:
                print(f"jetrace selftest: FAILED — spurious "
                      f"lock-cycle on {name}: {cycles}")
                ok = False
            others = [f for f in findings if f["rule"] != "lock-cycle"]
            if others:
                print(f"jetrace selftest: FAILED — unexpected "
                      f"findings on {name}: {others}")
                ok = False
            if not want_cycle and \
                    ("lockA", "lockB") not in {
                        (e["from"], e["to"]) for e in graph["edges"]}:
                print("jetrace selftest: FAILED — ordered variant "
                      "missing the lockA->lockB edge")
                ok = False
        for name, src, want_leaf in [
                ("shard_leaf.cc", SELFTEST_SHARD_LEAF, 0),
                ("shard_nonleaf.cc", SELFTEST_SHARD_NONLEAF, 1)]:
            p = os.path.join(td, name)
            with open(p, "w", encoding="utf-8") as f:
                f.write(src)
            findings, _, graph = audit([p], td)
            leaf = [f for f in findings
                    if f["rule"] == "shard-lock-not-leaf"]
            others = [f for f in findings
                      if f["rule"] != "shard-lock-not-leaf"]
            if len(leaf) != want_leaf:
                print(f"jetrace selftest: FAILED — expected "
                      f"{want_leaf} shard-lock-not-leaf finding(s) "
                      f"on {name}, got {leaf}")
                ok = False
            if others:
                print(f"jetrace selftest: FAILED — unexpected "
                      f"findings on {name}: {others}")
                ok = False
            # Both variants are acyclic: the leaf rule must fire
            # where cycle detection stays silent.
            if not graph["acyclic"]:
                print(f"jetrace selftest: FAILED — shard fixture "
                      f"{name} should be acyclic")
                ok = False
        for name, src, want_raw in [
                ("mpsc_ring.cc", SELFTEST_MPSC_RING, 0),
                ("mpsc_raw_inbox.cc", SELFTEST_MPSC_RAW_MUTEX, 2)]:
            p = os.path.join(td, name)
            with open(p, "w", encoding="utf-8") as f:
                f.write(src)
            findings, inv, graph = audit([p], td)
            raw = [f for f in findings if f["rule"] == "raw-mutex"]
            others = [f for f in findings
                      if f["rule"] != "raw-mutex"]
            if len(raw) != want_raw:
                print(f"jetrace selftest: FAILED — expected "
                      f"{want_raw} raw-mutex finding(s) on {name}, "
                      f"got {raw}")
                ok = False
            if others:
                print(f"jetrace selftest: FAILED — unexpected "
                      f"findings on {name}: {others}")
                ok = False
            if name == "mpsc_ring.cc":
                # The whole point of the ring: zero capabilities.
                if graph["nodes"] or inv["capabilities"]:
                    print(f"jetrace selftest: FAILED — MPSC ring "
                          f"fixture added lock-graph capabilities: "
                          f"nodes={graph['nodes']} "
                          f"capabilities={inv['capabilities']}")
                    ok = False
                if inv["atomic"] < 3 or inv["confined"] < 1:
                    print(f"jetrace selftest: FAILED — MPSC ring "
                          f"inventory misclassified: {inv}")
                    ok = False
    if ok:
        print("jetrace selftest: inverted two-lock fixture yields "
              "the lockA<->lockB cycle; ordered fixture is acyclic; "
              "shard-leaf fixtures: non-leaf acquisition under "
              "shard_mu_ flagged, leaf-only use clean; MPSC inbox "
              "ring audits clean with zero lock-graph capabilities, "
              "raw-mutex inbox variant flagged")
    if jetmc_ce:
        try:
            with open(jetmc_ce, encoding="utf-8") as f:
                ce = json.load(f)
        except (OSError, ValueError) as e:
            print(f"jetrace selftest: cannot read jetmc CE "
                  f"{jetmc_ce}: {e}")
            return False
        if ce.get("what") != "deadlock" or \
                ce.get("model") != "toylock-inverted":
            print(f"jetrace selftest: FAILED — jetmc CE disagrees "
                  f"(model={ce.get('model')}, what={ce.get('what')}); "
                  f"static verdict says only the inverted discipline "
                  f"deadlocks")
            return False
        print("jetrace selftest: cross-check OK — jetmc's dynamic "
              "deadlock is on toylock-inverted, matching the static "
              "cycle verdict")
    return ok


def main():
    ap = argparse.ArgumentParser(
        description="concurrency-discipline audit for jetsim src/")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--json", action="store_true",
                    help="emit findings + inventory + lock graph as "
                         "JSON on stdout")
    ap.add_argument("--sarif", action="store_true",
                    help="emit findings as a SARIF 2.1.0 log")
    ap.add_argument("--dot", action="store_true",
                    help="emit the lock-order graph in DOT form")
    ap.add_argument("--selftest", action="store_true",
                    help="audit the embedded two-lock fixtures "
                         "(mirrors jetmc --selftest)")
    ap.add_argument("--jetmc-ce", default=None, metavar="FILE",
                    help="with --selftest: cross-check against the "
                         "counterexample jetmc found dynamically")
    ap.add_argument("--backend", default="auto",
                    choices=["auto", "lex", "libclang"],
                    help="inventory backend (default: libclang when "
                         "the bindings are importable, else lexical)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule table and exit")
    ap.add_argument("paths", nargs="*",
                    help="files/dirs to audit (default: <root>/src)")
    args = ap.parse_args()

    if args.list_rules:
        for rule, desc in RULES:
            print(f"{rule:20} {desc}")
        return 0

    if args.selftest:
        return 0 if selftest(args.jetmc_ce) else 1

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    targets = args.paths or [os.path.join(root, "src")]
    files = collect_files(targets)
    if not files:
        print("jetrace: no input files", file=sys.stderr)
        return 2

    ci = None
    if args.backend in ("auto", "libclang"):
        ci = try_libclang()
        if ci is None and args.backend == "libclang":
            print("jetrace: libclang Python bindings not importable; "
                  "install them or use --backend=lex", file=sys.stderr)
            return 2
        if ci is None and not (args.json or args.sarif):
            print("jetrace: note: libclang bindings unavailable; "
                  "using the lexical backend", file=sys.stderr)

    findings, inventory, lock_graph = audit(files, root)

    if ci is not None:
        # AST refinement: any static-storage VarDecl the lexical
        # inventory missed becomes a finding too.
        seen = set()
        lex_names = {(f["path"], f["line"]) for f in findings}
        src_dir = os.path.join(root, "src")
        for path in files:
            rel = os.path.relpath(path, root)
            for line, name in libclang_inventory(ci, path, src_dir):
                key = (rel, line)
                if key in lex_names or key in seen:
                    continue
                seen.add(key)
                with open(path, encoding="utf-8",
                          errors="replace") as f:
                    raw = f.read().splitlines()
                code = raw[line - 1] if line - 1 < len(raw) else ""
                if SYNC_TYPE_RE.search(code) or \
                        GUARDED_BY_RE.search(code) or \
                        "thread_local" in code or \
                        annotation_comment(raw, line - 1) or \
                        allowed(raw, line - 1, "unannotated-global"):
                    continue
                findings.append({
                    "path": rel, "line": line,
                    "rule": "unannotated-global",
                    "message": f"'{name}' (libclang): mutable "
                               f"static-storage object with no "
                               f"classification"})
        findings.sort(key=lambda f: (f["path"], f["line"], f["rule"]))

    if args.dot:
        print("digraph lock_order {")
        for e in lock_graph["edges"]:
            print(f'  "{e["from"]}" -> "{e["to"]}" '
                  f'[label="{e["path"]}:{e["line"]}"];')
        print("}")
        return 0

    if args.sarif:
        cpplex.print_sarif("jetrace", RULES, findings, root)
        return 1 if findings else 0

    if args.json:
        print(json.dumps({"schema_version": SCHEMA_VERSION,
                          "tool": "jetrace",
                          "findings": findings,
                          "files": len(files),
                          "inventory": inventory,
                          "lock_graph": lock_graph}, indent=2))
        return 1 if findings else 0

    for f in findings:
        print(f"{f['path']}:{f['line']}: [{f['rule']}] "
              f"{f['message']}")
    n_edges = len(lock_graph["edges"])
    shape = "acyclic" if lock_graph["acyclic"] else "CYCLIC"
    if findings:
        print(f"jetrace: {len(findings)} finding(s) in "
              f"{len(files)} files (lock graph: "
              f"{len(lock_graph['nodes'])} capabilities, "
              f"{n_edges} edges, {shape})")
        return 1
    print(f"jetrace: {len(files)} files clean — "
          f"{inventory['capabilities']} capabilities, "
          f"{inventory['guarded_fields']} guarded fields, "
          f"{inventory['atomic']} atomic, "
          f"{inventory['confined']} confined, "
          f"{inventory['guarded']} self-synchronized globals; "
          f"lock graph {len(lock_graph['nodes'])} nodes / "
          f"{n_edges} edges, {shape}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
